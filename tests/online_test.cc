#include "jigsaw/online.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "jigsaw/analysis/visualize.h"

namespace jig {
namespace {

JFrame DataJFrame(UniversalMicros at, std::uint16_t client,
                  std::uint16_t seq, std::size_t instances = 2) {
  Frame f = MakeData(MacAddress::Ap(0), MacAddress::Client(client),
                     MacAddress::Ap(0), seq, Bytes(100), PhyRate::kB11,
                     false, true);
  JFrame jf;
  jf.timestamp = at;
  jf.rate = f.rate;
  const Bytes wire = f.Serialize();
  jf.wire_len = static_cast<std::uint32_t>(wire.size());
  jf.frame = std::move(f);
  for (std::size_t i = 0; i < instances; ++i) {
    FrameInstance inst;
    inst.radio = static_cast<RadioId>(i);
    inst.outcome = i == 0 ? RxOutcome::kOk : RxOutcome::kFcsError;
    jf.instances.push_back(inst);
  }
  jf.dispersion = 7;
  return jf;
}

TEST(OnlineMonitor, WindowsEmittedInOrder) {
  std::vector<OnlineWindowStats> windows;
  OnlineMonitor monitor(Seconds(1), [&](const OnlineWindowStats& w) {
    windows.push_back(w);
  });
  const UniversalMicros t0 = Seconds(100);
  monitor.OnJFrame(DataJFrame(t0 + 100, 1, 1));
  monitor.OnJFrame(DataJFrame(t0 + 500'000, 2, 2));
  monitor.OnJFrame(DataJFrame(t0 + Seconds(1) + 10, 1, 3));
  monitor.Flush();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].jframes, 2u);
  EXPECT_EQ(windows[0].active_clients, 2);
  EXPECT_EQ(windows[1].jframes, 1u);
  EXPECT_LT(windows[0].window_start, windows[1].window_start);
}

TEST(OnlineMonitor, StatsAccumulate) {
  std::vector<OnlineWindowStats> windows;
  OnlineMonitor monitor(Seconds(1), [&](const OnlineWindowStats& w) {
    windows.push_back(w);
  });
  const UniversalMicros t0 = Seconds(5);
  for (int i = 0; i < 10; ++i) {
    monitor.OnJFrame(DataJFrame(t0 + i * 1000, 1, static_cast<std::uint16_t>(i)));
  }
  monitor.Flush();
  ASSERT_EQ(windows.size(), 1u);
  const auto& w = windows[0];
  EXPECT_EQ(w.jframes, 10u);
  EXPECT_EQ(w.data_frames, 10u);
  EXPECT_EQ(w.corrupted_instances, 10u);  // one per jframe
  EXPECT_EQ(w.worst_dispersion, 7);
  EXPECT_GT(w.airtime_fraction, 0.0);
  EXPECT_EQ(w.broadcast_airtime_fraction, 0.0);  // all unicast
  EXPECT_GT(w.bytes_on_air, 0u);
}

TEST(OnlineMonitor, IdleGapsSkipWindows) {
  std::vector<OnlineWindowStats> windows;
  OnlineMonitor monitor(Seconds(1), [&](const OnlineWindowStats& w) {
    windows.push_back(w);
  });
  monitor.OnJFrame(DataJFrame(Seconds(10), 1, 1));
  monitor.OnJFrame(DataJFrame(Seconds(60), 1, 2));  // 50 s of silence
  monitor.Flush();
  ASSERT_EQ(windows.size(), 2u);
  // No empty windows in between.
  EXPECT_EQ(windows[0].jframes, 1u);
  EXPECT_EQ(windows[1].jframes, 1u);
}

TEST(Visualize, TimelineShowsInstancesAndLegend) {
  std::vector<JFrame> jframes;
  jframes.push_back(DataJFrame(1'000'000, 1, 1, 3));
  jframes.push_back(DataJFrame(1'002'000, 2, 2, 2));
  TimelineOptions options;
  options.span = 5'000;
  const std::string art = RenderTimeline(jframes, options);
  // Rows for the radios involved, decoded and corrupted markers, legend.
  EXPECT_NE(art.find("r0"), std::string::npos);
  EXPECT_NE(art.find("r1"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('x'), std::string::npos);
  EXPECT_NE(art.find("DATA"), std::string::npos);
  EXPECT_NE(art.find("dispersion"), std::string::npos);
}

TEST(Visualize, EmptyInputsHandled) {
  EXPECT_EQ(RenderTimeline({}), "(no jframes)\n");
  std::vector<JFrame> jframes;
  jframes.push_back(DataJFrame(1'000'000, 1, 1));
  TimelineOptions options;
  options.start = 5'000'000;  // far beyond the data
  EXPECT_EQ(RenderTimeline(jframes, options), "(window empty)\n");
}

TEST(Visualize, FloorplanMarksAllStationKinds) {
  BuildingModel building;
  std::vector<ApInfo> aps = {{MacAddress::Ap(0), {10, 20, 2.8},
                              Channel::kCh1, 0}};
  std::vector<PodInfo> pods;
  pods.push_back(PodInfo{{20, 18, 2.5}, {0, 1, 2, 3}});
  std::vector<ClientInfo> clients = {{MacAddress::Client(0),
                                      MakeIpv4(10, 2, 0, 0),
                                      {30, 8, 1.0}, false, 0,
                                      Channel::kCh1}};
  const auto count = [](const std::string& s, char c) {
    return std::count(s.begin(), s.end(), c);
  };
  const std::string art = RenderFloorplan(building, aps, pods, clients, 0);
  // One of each marker in the legend, plus one plotted on the grid.
  EXPECT_EQ(count(art, '^'), 2);
  EXPECT_EQ(count(art, 'O'), 2);
  EXPECT_GE(count(art, '.'), 2);
  // Stations on other floors are not drawn (legend marker only).
  const std::string empty_floor =
      RenderFloorplan(building, aps, pods, clients, 2);
  EXPECT_EQ(count(empty_floor, '^'), 1);
  EXPECT_EQ(count(empty_floor, 'O'), 1);
}

}  // namespace
}  // namespace jig
