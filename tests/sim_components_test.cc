// Tests for the remaining simulator components: medium, monitor, wired
// network, access point + client association, traffic manager.
#include <gtest/gtest.h>

#include "sim/access_point.h"
#include "sim/client.h"
#include "sim/monitor.h"
#include "sim/scenario.h"
#include "sim/traffic.h"
#include "sim/wired.h"

namespace jig {
namespace {

PropagationConfig CleanAir() {
  PropagationConfig cfg;
  cfg.path_loss_exponent = 3.0;
  cfg.wall_loss_db = 0.0;
  cfg.floor_loss_db = 0.0;
  cfg.shadowing_sigma_db = 0.0;
  cfg.fading_sigma_db = 0.0;
  cfg.slow_fading_sigma_db = 0.0;
  return cfg;
}

class SimFixture : public ::testing::Test {
 protected:
  SimFixture()
      : propagation_(BuildingModel{}, CleanAir()),
        medium_(events_, propagation_, Rng(1), &truth_),
        wired_(events_, Rng(2), WiredConfig{}) {}

  EventQueue events_;
  PropagationModel propagation_;
  TruthLog truth_;
  Medium medium_;
  WiredNetwork wired_;
};

TEST_F(SimFixture, MonitorCapturesWithSharedClock) {
  ClockConfig clock_cfg;
  clock_cfg.jitter_sigma_us = 0.0;
  Monitor monitor(events_, medium_, clock_cfg, Rng(5), /*pod=*/0,
                  /*monitor_index=*/0, Point3{10, 10, 2},
                  {Channel::kCh1, Channel::kCh6}, /*first_radio_id=*/0);

  // One transmission per channel at the same true instant.
  Frame f1 = MakeBeacon(MacAddress::Ap(0), 1, PhyRate::kB1);
  Frame f6 = MakeBeacon(MacAddress::Ap(1), 1, PhyRate::kB1);
  medium_.Transmit(f1, MacAddress::Ap(0), {12, 10, 2}, 18.0, Channel::kCh1,
                   nullptr);
  medium_.Transmit(f6, MacAddress::Ap(1), {12, 10, 2}, 18.0, Channel::kCh6,
                   nullptr);
  events_.RunUntil(Seconds(1));

  auto t0 = monitor.radio(0).TakeTrace();
  auto t1 = monitor.radio(1).TakeTrace();
  ASSERT_EQ(t0->size(), 1u);
  ASSERT_EQ(t1->size(), 1u);
  // Both radios stamped the same instant with the same (shared) clock.
  EXPECT_EQ(t0->records()[0].timestamp, t1->records()[0].timestamp);
  EXPECT_EQ(t0->header().monitor, t1->header().monitor);
  EXPECT_NE(t0->header().radio, t1->header().radio);
}

TEST_F(SimFixture, MonitorTruncatesToSnaplen) {
  ClockConfig clock_cfg;
  Monitor monitor(events_, medium_, clock_cfg, Rng(5), 0, 0,
                  Point3{10, 10, 2}, {Channel::kCh1, Channel::kCh6}, 0);
  Frame big = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                       MacAddress::Ap(0), 1, Bytes(300, 0x77), PhyRate::kB11,
                       false, true);
  const std::size_t wire_size = big.WireSize();
  medium_.Transmit(big, MacAddress::Client(1), {12, 10, 2}, 15.0,
                   Channel::kCh1, nullptr);
  events_.RunUntil(Seconds(1));
  auto trace = monitor.radio(0).TakeTrace();
  ASSERT_EQ(trace->size(), 1u);
  const auto& rec = trace->records()[0];
  EXPECT_EQ(rec.orig_len, wire_size);
  EXPECT_EQ(rec.bytes.size(), trace->header().snaplen);
  EXPECT_LT(rec.bytes.size(), wire_size);
}

TEST_F(SimFixture, NoiseBurstsLogPhyErrors) {
  ClockConfig clock_cfg;
  Monitor monitor(events_, medium_, clock_cfg, Rng(5), 0, 0,
                  Point3{10, 10, 2}, {Channel::kCh1, Channel::kCh6}, 0);
  medium_.EmitNoise({11, 10, 2}, 20.0, Milliseconds(10));
  events_.RunUntil(Seconds(1));
  auto trace = monitor.radio(0).TakeTrace();
  ASSERT_GT(trace->size(), 0u);
  for (const auto& rec : trace->records()) {
    EXPECT_EQ(rec.outcome, RxOutcome::kPhyError);
    EXPECT_TRUE(rec.bytes.empty());
  }
}

TEST_F(SimFixture, ClientAssociatesThroughFullHandshake) {
  ApConfig ap_cfg;
  MacConfig mac_cfg;
  AccessPoint ap(events_, medium_, wired_, 0, Point3{10, 20, 2},
                 Channel::kCh1, Rng(3), ap_cfg, mac_cfg);
  ap.Start();

  ClientConfig c_cfg;
  c_cfg.ip = MakeIpv4(10, 2, 0, 1);
  c_cfg.ap_mac = ap.address();
  c_cfg.ap_index = 0;
  Client client(events_, medium_, wired_, 1, Point3{15, 20, 2},
                Channel::kCh1, Rng(4), mac_cfg, c_cfg);
  bool associated = false;
  client.set_on_associated([&] { associated = true; });
  client.PowerOn();
  events_.RunUntil(Seconds(5));

  EXPECT_TRUE(associated);
  EXPECT_TRUE(client.associated());
  EXPECT_EQ(ap.associated_clients(), 1u);
  EXPECT_TRUE(wired_.ClientRegistered(c_cfg.ip));

  // The handshake generated the full management conversation on the air.
  bool saw_probe_req = false, saw_probe_resp = false, saw_auth = false,
       saw_assoc_req = false, saw_assoc_resp = false, saw_dhcp = false;
  for (const auto& e : truth_.entries()) {
    saw_probe_req |= e.type == FrameType::kProbeRequest;
    saw_probe_resp |= e.type == FrameType::kProbeResponse;
    saw_auth |= e.type == FrameType::kAuthentication;
    saw_assoc_req |= e.type == FrameType::kAssocRequest;
    saw_assoc_resp |= e.type == FrameType::kAssocResponse;
    saw_dhcp |= e.type == FrameType::kData;
  }
  EXPECT_TRUE(saw_probe_req);
  EXPECT_TRUE(saw_probe_resp);
  EXPECT_TRUE(saw_auth);
  EXPECT_TRUE(saw_assoc_req);
  EXPECT_TRUE(saw_assoc_resp);
  EXPECT_TRUE(saw_dhcp);  // DHCP-style broadcast after association
}

TEST_F(SimFixture, BClientTriggersApProtection) {
  ApConfig ap_cfg;
  ap_cfg.protection_timeout = Hours(1);
  MacConfig mac_cfg;
  AccessPoint ap(events_, medium_, wired_, 0, Point3{10, 20, 2},
                 Channel::kCh1, Rng(3), ap_cfg, mac_cfg);
  ap.Start();
  EXPECT_FALSE(ap.protection_active());

  ClientConfig c_cfg;
  c_cfg.b_only = true;
  c_cfg.ip = MakeIpv4(10, 2, 0, 2);
  c_cfg.ap_mac = ap.address();
  MacConfig b_mac_cfg;
  b_mac_cfg.b_only = true;
  Client b_client(events_, medium_, wired_, 2, Point3{14, 20, 2},
                  Channel::kCh1, Rng(6), b_mac_cfg, c_cfg);
  b_client.PowerOn();
  events_.RunUntil(Seconds(10));
  EXPECT_TRUE(ap.protection_active());
  EXPECT_GT(ap.last_b_sense(), 0);
}

TEST_F(SimFixture, ProtectionPropagatesToGClientsViaBeacons) {
  ApConfig ap_cfg;
  MacConfig mac_cfg;
  AccessPoint ap(events_, medium_, wired_, 0, Point3{10, 20, 2},
                 Channel::kCh1, Rng(3), ap_cfg, mac_cfg);
  ap.Start();

  ClientConfig g_cfg;
  g_cfg.ip = MakeIpv4(10, 2, 0, 3);
  g_cfg.ap_mac = ap.address();
  Client g_client(events_, medium_, wired_, 3, Point3{16, 20, 2},
                  Channel::kCh1, Rng(7), mac_cfg, g_cfg);
  g_client.PowerOn();

  ClientConfig b_cfg;
  b_cfg.b_only = true;
  b_cfg.ip = MakeIpv4(10, 2, 0, 4);
  b_cfg.ap_mac = ap.address();
  MacConfig b_mac;
  b_mac.b_only = true;
  Client b_client(events_, medium_, wired_, 4, Point3{14, 20, 2},
                  Channel::kCh1, Rng(8), b_mac, b_cfg);

  events_.RunUntil(Seconds(2));
  EXPECT_FALSE(g_client.mac().protection());
  b_client.PowerOn();
  events_.RunUntil(Seconds(8));  // beacons carry the ERP bit within ~100 ms
  EXPECT_TRUE(g_client.mac().protection());
}

TEST_F(SimFixture, WiredTapsAndRoutesPackets) {
  std::vector<PacketInfo> at_server;
  wired_.RegisterServer(MakeIpv4(10, 1, 0, 10),
                        [&](const PacketInfo& info, Bytes) {
                          at_server.push_back(info);
                        });
  bool to_client_delivered = false;
  WiredNetwork::ApPort port;
  port.deliver_unicast = [&](MacAddress, Bytes) {
    to_client_delivered = true;
  };
  port.deliver_broadcast = [](Bytes) {};
  wired_.RegisterAp(0, std::move(port));
  wired_.RegisterClient(MacAddress::Client(1), MakeIpv4(10, 2, 0, 1), 0);

  TcpSegment seg;
  seg.src_port = 10'000;
  seg.dst_port = 80;
  seg.seq = 1;
  seg.flags = kTcpSyn;
  wired_.DeliverFromWireless(
      0, MacAddress::Client(1),
      BuildTcpFrameBody(MakeIpv4(10, 2, 0, 1), MakeIpv4(10, 1, 0, 10), seg));
  events_.RunUntil(Seconds(1));
  ASSERT_EQ(at_server.size(), 1u);
  EXPECT_EQ(at_server[0].tcp->dst_port, 80);
  ASSERT_EQ(wired_.sniffer().size(), 1u);
  EXPECT_FALSE(wired_.sniffer()[0].to_wireless);

  wired_.SendToWireless(MakeIpv4(10, 1, 0, 10), MakeIpv4(10, 2, 0, 1),
                        BuildTcpFrameBody(MakeIpv4(10, 1, 0, 10),
                                          MakeIpv4(10, 2, 0, 1), seg));
  events_.RunUntil(Seconds(2));
  EXPECT_TRUE(to_client_delivered);
  EXPECT_EQ(wired_.sniffer().size(), 2u);
  EXPECT_TRUE(wired_.sniffer()[1].to_wireless);
}

TEST_F(SimFixture, WiredBroadcastFansOutToAllAps) {
  int broadcasts = 0;
  for (std::uint16_t i = 0; i < 4; ++i) {
    WiredNetwork::ApPort port;
    port.deliver_unicast = [](MacAddress, Bytes) {};
    port.deliver_broadcast = [&](Bytes) { ++broadcasts; };
    wired_.RegisterAp(i, std::move(port));
  }
  ArpMessage arp{true, MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 2, 0, 1)};
  wired_.BroadcastToAir(BuildArpFrameBody(arp));
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(broadcasts, 4);
}

TEST(ScenarioTest, BuildsPaperScaleDeployment) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(1);
  cfg.clients = 10;
  Scenario scenario(cfg);
  EXPECT_EQ(scenario.pod_info().size(), 39u);   // paper: 39 pods
  std::size_t radios = 0;
  for (const auto& pod : scenario.pod_info()) radios += pod.radios.size();
  EXPECT_EQ(radios, 156u);                      // paper: 156 radios
  EXPECT_EQ(scenario.ap_count(), 40u);
  EXPECT_EQ(scenario.client_count(), 10u);
  // Channel plan covers all three orthogonal channels.
  std::set<Channel> channels;
  for (const auto& ap : scenario.ap_info()) channels.insert(ap.channel);
  EXPECT_EQ(channels.size(), 3u);
}

TEST(ScenarioTest, PodReductionKeepsSpread) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(1);
  cfg.clients = 5;
  cfg.pods_enabled = 20;
  Scenario scenario(cfg);
  EXPECT_EQ(scenario.pod_info().size(), 20u);
  // Kept pods must span the building, not cluster at one end.
  double min_x = 1e9, max_x = -1e9;
  for (const auto& pod : scenario.pod_info()) {
    min_x = std::min(min_x, pod.position.x);
    max_x = std::max(max_x, pod.position.x);
  }
  EXPECT_LT(min_x, 20.0);
  EXPECT_GT(max_x, 60.0);
}

TEST(ScenarioTest, TrafficFlowsEndToEnd) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.duration = Seconds(10);
  cfg.clients = 12;
  cfg.workload.web_per_min = 6.0;
  Scenario scenario(cfg);
  scenario.Run();
  EXPECT_GT(scenario.traffic_stats().flows_started, 0u);
  EXPECT_GT(scenario.traffic_stats().flows_completed, 0u);
  EXPECT_GT(scenario.wired_records().size(), 10u);
  EXPECT_GT(scenario.truth().size(), 500u);
}

}  // namespace
}  // namespace jig
