// Exit-code contract of the jigtool CLI (documented in examples/jigtool.cpp
// and docs/OBSERVABILITY.md): 0 success, 1 unreadable/missing input,
// 2 usage error, 3 corrupt or truncated input.  Monitoring wrappers and the
// CI bench gate branch on these, so they are pinned here.
//
// The jigtool binary is located via the JIGTOOL environment variable, or
// ./jigtool relative to the test's working directory (ctest runs from the
// build root, where every target lands).  Skips if neither resolves.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

std::string JigtoolPath() {
  if (const char* env = std::getenv("JIGTOOL")) return env;
  if (fs::exists("./jigtool")) return "./jigtool";
  return "";
}

// Runs jigtool with `args`, returns its exit code (-1 on system() failure).
int RunJigtool(const std::string& args) {
  const std::string cmd = JigtoolPath() + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (JigtoolPath().empty()) {
      GTEST_SKIP() << "jigtool binary not found (set JIGTOOL)";
    }
    dir_ = fs::temp_directory_path() /
           ("jig_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void WriteGarbage(const fs::path& path) {
    std::ofstream out(path, std::ios::binary);
    // Arbitrary non-magic bytes: enough to open, wrong from byte 0.
    for (int i = 0; i < 64; ++i) out.put(static_cast<char>(i * 7 + 1));
  }

  fs::path dir_;
};

TEST_F(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunJigtool(""), 2);
  EXPECT_EQ(RunJigtool("frobnicate " + dir_.string()), 2);
  EXPECT_EQ(RunJigtool("merge " + dir_.string() + " --spill-dir"), 2);
  EXPECT_EQ(RunJigtool("stats " + dir_.string() + " --stats-json"), 2);
}

TEST_F(CliTest, StatsOnMissingOrEmptyInputExitsOne) {
  EXPECT_EQ(RunJigtool("stats " + (dir_ / "nonexistent").string()), 1);
  EXPECT_EQ(RunJigtool("stats " + dir_.string()), 1);  // no .jigt files
}

TEST_F(CliTest, StatsOnCorruptTraceExitsThree) {
  WriteGarbage(dir_ / "bad.jigt");
  EXPECT_EQ(RunJigtool("stats " + dir_.string()), 3);
}

TEST_F(CliTest, InspectSpillOnMissingOrEmptyInputExitsOne) {
  EXPECT_EQ(RunJigtool("inspect-spill " + (dir_ / "nonexistent").string()),
            1);
  EXPECT_EQ(RunJigtool("inspect-spill " + dir_.string()), 1);  // no .jigs
}

TEST_F(CliTest, InspectSpillOnCorruptSegmentExitsThree) {
  WriteGarbage(dir_ / "ch1-0.jigs");
  EXPECT_EQ(RunJigtool("inspect-spill " + dir_.string()), 3);
}

}  // namespace
