// Exit-code contract of the jigtool CLI (documented in examples/jigtool.cpp
// and docs/OBSERVABILITY.md): 0 success, 1 unreadable/missing input or
// unreachable peer, 2 usage error, 3 corrupt or truncated input.  The
// contract covers the network doors too: serve-trace maps a refused
// connection to 1 and a mid-stream disconnect (either direction) to 3.
// Monitoring wrappers and the CI bench gate branch on these, so they are
// pinned here.
//
// The jigtool binary is located via the JIGTOOL environment variable, or
// ./jigtool relative to the test's working directory (ctest runs from the
// build root, where every target lands).  Skips if neither resolves.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "trace/net.h"
#include "trace/trace_file.h"

namespace {

namespace fs = std::filesystem;

std::string JigtoolPath() {
  if (const char* env = std::getenv("JIGTOOL")) return env;
  if (fs::exists("./jigtool")) return "./jigtool";
  return "";
}

// Runs jigtool with `args`, returns its exit code (-1 on system() failure).
int RunJigtool(const std::string& args) {
  const std::string cmd = JigtoolPath() + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (JigtoolPath().empty()) {
      GTEST_SKIP() << "jigtool binary not found (set JIGTOOL)";
    }
    dir_ = fs::temp_directory_path() /
           ("jig_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void WriteGarbage(const fs::path& path) {
    std::ofstream out(path, std::ios::binary);
    // Arbitrary non-magic bytes: enough to open, wrong from byte 0.
    for (int i = 0; i < 64; ++i) out.put(static_cast<char>(i * 7 + 1));
  }

  // A small, valid, finalized single-radio trace for the network tests.
  fs::path WriteValidTrace(const std::string& name, int records = 100) {
    const fs::path path = dir_ / name;
    jig::TraceHeader header;
    header.radio = 1;
    jig::TraceFileWriter writer(path, header, /*records_per_block=*/16);
    jig::CaptureRecord rec;
    rec.bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
    rec.orig_len = 14;
    for (int i = 0; i < records; ++i) {
      rec.timestamp = 1'000 * (i + 1);
      writer.Append(rec);
    }
    writer.Finish();
    return path;
  }

  // A port with nothing listening on it: bind an ephemeral listener, note
  // the port, close it again.
  static std::uint16_t UnusedPort() {
    jig::net::Listener probe("127.0.0.1", 0);
    return probe.port();
  }

  fs::path dir_;
};

TEST_F(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunJigtool(""), 2);
  EXPECT_EQ(RunJigtool("frobnicate " + dir_.string()), 2);
  EXPECT_EQ(RunJigtool("merge " + dir_.string() + " --spill-dir"), 2);
  EXPECT_EQ(RunJigtool("stats " + dir_.string() + " --stats-json"), 2);
}

TEST_F(CliTest, StatsOnMissingOrEmptyInputExitsOne) {
  EXPECT_EQ(RunJigtool("stats " + (dir_ / "nonexistent").string()), 1);
  EXPECT_EQ(RunJigtool("stats " + dir_.string()), 1);  // no .jigt files
}

TEST_F(CliTest, StatsOnCorruptTraceExitsThree) {
  WriteGarbage(dir_ / "bad.jigt");
  EXPECT_EQ(RunJigtool("stats " + dir_.string()), 3);
}

TEST_F(CliTest, InspectSpillOnMissingOrEmptyInputExitsOne) {
  EXPECT_EQ(RunJigtool("inspect-spill " + (dir_ / "nonexistent").string()),
            1);
  EXPECT_EQ(RunJigtool("inspect-spill " + dir_.string()), 1);  // no .jigs
}

TEST_F(CliTest, InspectSpillOnCorruptSegmentExitsThree) {
  WriteGarbage(dir_ / "ch1-0.jigs");
  EXPECT_EQ(RunJigtool("inspect-spill " + dir_.string()), 3);
}

// ------------------------------------------------------------------------
// Network doors.

TEST_F(CliTest, ServeTraceUsageErrorsExitTwo) {
  const fs::path trace = WriteValidTrace("r1.jigt");
  EXPECT_EQ(RunJigtool("serve-trace " + trace.string()), 2);  // no host/port
  EXPECT_EQ(RunJigtool("serve-trace " + trace.string() + " 127.0.0.1"), 2);
  EXPECT_EQ(RunJigtool("collect " + dir_.string() + " 12345"), 2);  // no n
  EXPECT_EQ(RunJigtool("demo-live " + dir_.string() + " 1 10 --tcp"), 2);
}

TEST_F(CliTest, ServeTraceMissingFileExitsOne) {
  EXPECT_EQ(RunJigtool("serve-trace " + (dir_ / "nope.jigt").string() +
                       " 127.0.0.1 1"),
            1);
}

TEST_F(CliTest, ServeTraceConnectionRefusedExitsOne) {
  const fs::path trace = WriteValidTrace("r1.jigt");
  EXPECT_EQ(RunJigtool("serve-trace " + trace.string() + " 127.0.0.1 " +
                       std::to_string(UnusedPort())),
            1);
}

TEST_F(CliTest, ServeTraceCorruptSourceExitsThree) {
  WriteGarbage(dir_ / "bad.jigt");
  // Corruption is detected before the dial, so no collector is needed.
  EXPECT_EQ(RunJigtool("serve-trace " + (dir_ / "bad.jigt").string() +
                       " 127.0.0.1 1"),
            3);
}

// Shell fragment that blocks until `file` exists (up to ~10 s) — the
// readiness door: collect/serve write their ready/snapshot file once
// actually listening, so no fixed sleep has to guess startup latency.
std::string WaitForFile(const std::string& file) {
  return "i=0; while [ ! -e " + file +
         " ] && [ $i -lt 1000 ]; do sleep 0.01; i=$((i+1)); done; ";
}

// Composite runner for one collect (background) + one serve-trace
// (foreground) against the same port: returns serve_exit * 10 +
// collect_exit, so a single assertion pins both ends of the wire.  The
// sender dials only after the collector's --ready-file appears.
int RunServeCollectPair(const std::string& tool, const fs::path& trace,
                        const fs::path& out_dir, std::uint16_t port) {
  const std::string p = std::to_string(port);
  const std::string ready = out_dir.string() + ".ready";
  const std::string cmd = tool + " collect " + out_dir.string() + " " + p +
                          " 1 --ready-file " + ready +
                          " >/dev/null 2>&1 & cpid=$!; " +
                          WaitForFile(ready) + tool + " serve-trace " +
                          trace.string() + " 127.0.0.1 " + p +
                          " >/dev/null 2>&1; s=$?; wait $cpid; c=$?; "
                          "exit $((s * 10 + c))";
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST_F(CliTest, ServeTraceToCollectRoundTripExitsZeroBothEnds) {
  const fs::path trace = WriteValidTrace("r1.jigt");
  const int combined = RunServeCollectPair(JigtoolPath(), trace,
                                           dir_ / "out", UnusedPort());
  EXPECT_EQ(combined, 0) << "serve exit " << combined / 10
                         << ", collect exit " << combined % 10;
  // The collector persisted the stream (byte-identical: same records,
  // same block framing, same index).
  EXPECT_TRUE(fs::exists(dir_ / "out" / "r1.jigt"));
}

TEST_F(CliTest, MidStreamDisconnectExitsThreeBothEnds) {
  // Truncate a valid trace mid-block: serve-trace relays the complete
  // blocks then closes WITHOUT the finalize marker (exit 3), and the
  // collector observes a genuine mid-stream disconnect (exit 3).
  const fs::path trace = WriteValidTrace("r1.jigt", 200);
  const auto full = fs::file_size(trace);
  fs::resize_file(trace, full / 2);
  const int combined = RunServeCollectPair(JigtoolPath(), trace,
                                           dir_ / "out", UnusedPort());
  EXPECT_EQ(combined, 33) << "serve exit " << combined / 10
                          << ", collect exit " << combined % 10;
}

// ------------------------------------------------------------------------
// The always-on service (`jigtool serve`).

TEST_F(CliTest, ServeUsageErrorsExitTwo) {
  EXPECT_EQ(RunJigtool("serve " + (dir_ / "state").string()), 2);
  EXPECT_EQ(RunJigtool("serve " + (dir_ / "state").string() + " " +
                       dir_.string() + " --expected"),
            2);
}

TEST_F(CliTest, ServeMissingTraceDirExitsOne) {
  EXPECT_EQ(RunJigtool("serve " + (dir_ / "state").string() + " " +
                       (dir_ / "nonexistent").string() + " --until-done"),
            1);
}

TEST_F(CliTest, ServeCorruptCheckpointExitsThree) {
  // A deployment whose recorded state cannot be loaded must refuse to
  // start (silently discarding a checkpoint would break the restart
  // determinism contract).
  const fs::path traces = dir_ / "traces";
  fs::create_directories(traces);
  WriteValidTrace("traces/r1.jigt");
  const fs::path state = dir_ / "state" / "traces";
  fs::create_directories(state);
  WriteGarbage(state / "checkpoint.jigc");
  EXPECT_EQ(RunJigtool("serve " + (dir_ / "state").string() + " " +
                       traces.string() + " --until-done --expected 1"),
            3);
}

TEST_F(CliTest, ServeUntilDoneExitsZeroAndWritesSnapshot) {
  const fs::path traces = dir_ / "traces";
  fs::create_directories(traces);
  WriteValidTrace("traces/r1.jigt");
  const fs::path state = dir_ / "state";
  EXPECT_EQ(RunJigtool("serve " + state.string() + " " + traces.string() +
                       " --until-done --expected 1"),
            0);
  EXPECT_TRUE(fs::exists(state / "snapshot.json"));
  EXPECT_TRUE(fs::exists(state / "metrics.prom"));
  EXPECT_TRUE(fs::exists(state / "traces" / "checkpoint.jigc"));
}

TEST_F(CliTest, ServeSigtermShutsDownCleanly) {
  // The SIGTERM door: start the daemon, wait for the snapshot exposition
  // (the readiness signal), signal it, and pin the clean-exit contract —
  // exit 0 after a final snapshot flush.  No fixed startup sleep: the
  // snapshot file IS the readiness door.
  const fs::path traces = dir_ / "traces";
  fs::create_directories(traces);
  WriteValidTrace("traces/r1.jigt");
  const fs::path state = dir_ / "state";
  const std::string snapshot = (state / "snapshot.json").string();
  const std::string cmd =
      JigtoolPath() + " serve " + state.string() + " " + traces.string() +
      " --expected 1 --interval-ms 50 >/dev/null 2>&1 & spid=$!; " +
      WaitForFile(snapshot) + "kill -TERM $spid; wait $spid";
  const int status = std::system(cmd.c_str());
  ASSERT_NE(status, -1);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(fs::exists(state / "snapshot.json"));
}

}  // namespace
