#include "phy/propagation.h"

#include <gtest/gtest.h>

#include "phy/geometry.h"

namespace jig {
namespace {

PropagationConfig QuietConfig() {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.fading_sigma_db = 0.0;
  cfg.slow_fading_sigma_db = 0.0;
  return cfg;
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(Geometry, Floors) {
  BuildingModel b;
  EXPECT_EQ(b.FloorOf({0, 0, 1.0}), 0);
  EXPECT_EQ(b.FloorOf({0, 0, 5.0}), 1);
  EXPECT_EQ(b.FloorsBetween({0, 0, 1}, {0, 0, 13}), 3);
  EXPECT_EQ(b.FloorsBetween({0, 0, 1}, {5, 5, 2}), 0);
}

TEST(Geometry, WallsGrowWithDistance) {
  BuildingModel b;
  EXPECT_EQ(b.WallsBetween({0, 0, 1}, {3, 0, 1}), 0);  // same room
  const int near = b.WallsBetween({0, 0, 1}, {12, 0, 1});
  const int far = b.WallsBetween({0, 0, 1}, {60, 0, 1});
  EXPECT_GT(near, 0);
  EXPECT_GT(far, near);
}

TEST(Geometry, Contains) {
  BuildingModel b;
  EXPECT_TRUE(b.Contains({10, 10, 2}));
  EXPECT_FALSE(b.Contains({-1, 10, 2}));
  EXPECT_FALSE(b.Contains({10, 10, 100}));
}

TEST(Propagation, DbmMwRoundtrip) {
  for (double dbm : {-90.0, -50.0, 0.0, 20.0}) {
    EXPECT_NEAR(MwToDbm(DbmToMw(dbm)), dbm, 1e-9);
  }
  EXPECT_LT(MwToDbm(0.0), -250.0);
}

TEST(Propagation, RssiDecaysWithDistance) {
  BuildingModel b;
  PropagationModel model(b, QuietConfig());
  const Point3 tx{10, 20, 2};
  double prev = 1000.0;
  for (double d : {1.0, 5.0, 10.0, 20.0, 40.0}) {
    const double rssi = model.MeanRssiDbm(tx, {10 + d, 20, 2}, 15.0);
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(Propagation, FloorsAttenuate) {
  BuildingModel b;
  PropagationModel model(b, QuietConfig());
  const Point3 tx{10, 20, 2};
  const double same = model.MeanRssiDbm(tx, {14, 20, 2}, 15.0);
  const double above = model.MeanRssiDbm(tx, {14, 20, 6}, 15.0);
  EXPECT_LT(above, same - 20.0);  // a slab costs 28 dB by default
}

TEST(Propagation, ShadowingSymmetricAndDeterministic) {
  BuildingModel b;
  PropagationConfig cfg;  // default shadowing on
  cfg.fading_sigma_db = 0.0;
  PropagationModel model(b, cfg);
  const Point3 a{5, 8, 2}, c{40, 30, 2};
  EXPECT_DOUBLE_EQ(model.MeanRssiDbm(a, c, 15.0),
                   model.MeanRssiDbm(a, c, 15.0));
  // Symmetric shadowing: path loss a->c equals c->a.
  EXPECT_NEAR(model.MeanRssiDbm(a, c, 15.0), model.MeanRssiDbm(c, a, 15.0),
              1e-9);
}

TEST(Propagation, SlowFadeCoherence) {
  BuildingModel b;
  PropagationConfig cfg;
  PropagationModel model(b, cfg);
  const Point3 a{5, 8, 2}, c{40, 30, 2};
  // Same coherence bucket: identical fade.
  EXPECT_DOUBLE_EQ(model.SlowFadeDb(a, c, 1000), model.SlowFadeDb(a, c, 2000));
  // Across many buckets the fade varies.
  bool varies = false;
  const double first = model.SlowFadeDb(a, c, 0);
  for (int i = 1; i < 20; ++i) {
    if (std::abs(model.SlowFadeDb(a, c, i * cfg.slow_fading_period) - first) >
        0.5) {
      varies = true;
    }
  }
  EXPECT_TRUE(varies);
}

TEST(Propagation, SinrAgainstNoiseOnly) {
  BuildingModel b;
  PropagationModel model(b, QuietConfig());
  // Signal at -60 dBm vs -95 dBm noise floor: SINR ~ 35 dB.
  EXPECT_NEAR(model.SinrDb(-60.0, 0.0), 35.0, 0.01);
  // Strong interference drowns it.
  EXPECT_LT(model.SinrDb(-60.0, DbmToMw(-55.0)), 0.0);
}

TEST(Reception, OutcomeThresholds) {
  // Below detection: nothing.
  EXPECT_EQ(DecideReception(-97.0, 50.0, PhyRate::kB1), RxOutcome::kNotHeard);
  // Detectable but below sensitivity: PHY error.
  EXPECT_EQ(DecideReception(-93.0, 50.0, PhyRate::kG54),
            RxOutcome::kPhyError);
  // Strong signal, terrible SINR: corrupted.
  EXPECT_EQ(DecideReception(-50.0, 1.0, PhyRate::kB11),
            RxOutcome::kFcsError);
  // Strong and clean: decoded.
  EXPECT_EQ(DecideReception(-50.0, 30.0, PhyRate::kG54), RxOutcome::kOk);
}

class ReceptionRateTest : public ::testing::TestWithParam<PhyRate> {};

TEST_P(ReceptionRateTest, SensitivityBoundaryConsistent) {
  const PhyRate r = GetParam();
  const double s = SensitivityDbm(r);
  EXPECT_EQ(DecideReception(s - 0.5, 60.0, r), RxOutcome::kPhyError);
  EXPECT_EQ(DecideReception(s + 0.5, 60.0, r), RxOutcome::kOk);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ReceptionRateTest,
                         ::testing::ValuesIn(kAllRates));

}  // namespace
}  // namespace jig
