#include "jigsaw/link.h"

#include <gtest/gtest.h>

#include "link_equality.h"

namespace jig {
namespace {

using jig::testing::ExpectLinkIdentical;

// Builds decoded jframes directly (bypassing the unifier) so attempt and
// exchange assembly can be tested against exact scripts.
class JFrameScript {
 public:
  UniversalMicros now = 1'000'000;

  JFrame& Push(Frame f, UniversalMicros at) {
    JFrame jf;
    jf.timestamp = at;
    jf.rate = f.rate;
    const Bytes wire = f.Serialize();
    jf.wire_len = static_cast<std::uint32_t>(wire.size());
    jf.digest = ContentDigest(wire);
    jf.frame = std::move(f);
    FrameInstance inst;
    inst.radio = 0;
    inst.outcome = RxOutcome::kOk;
    inst.universal_timestamp = at;
    jf.instances.push_back(inst);
    jframes.push_back(std::move(jf));
    return jframes.back();
  }

  // One complete DATA+ACK transaction from client c; returns end time.
  UniversalMicros DataAck(std::uint16_t client, std::uint16_t seq,
                          bool retry = false, bool with_ack = true,
                          PhyRate rate = PhyRate::kB2) {
    Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(client),
                          MacAddress::Ap(0), seq, Bytes(50), rate, false,
                          true);
    data.retry = retry;
    const Micros air = data.AirTimeMicros();
    Push(std::move(data), now);
    UniversalMicros t = now + air;
    if (with_ack) {
      Frame ack = MakeAck(MacAddress::Client(client),
                          ControlResponseRate(rate));
      Push(std::move(ack), t + kSifs);
      t += kSifs + TxDurationMicros(ControlResponseRate(rate), kAckBytes);
    }
    now = t + 200;  // inter-transaction gap
    return t;
  }

  std::vector<JFrame> jframes;
};

TEST(LinkAttempts, DataAckGroupsIntoOneAttempt) {
  JFrameScript script;
  script.DataAck(1, 10);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_TRUE(a.acked);
  EXPECT_EQ(a.sequence, 10);
  EXPECT_EQ(a.transmitter, MacAddress::Client(1));
  EXPECT_EQ(a.receiver, MacAddress::Ap(0));
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_FALSE(a.inferred);
}

TEST(LinkAttempts, CtsToSelfDataAckTransaction) {
  JFrameScript script;
  // CTS-to-self, SIFS, DATA at OFDM, SIFS, ACK — the protected sequence.
  Frame cts = MakeCtsToSelf(MacAddress::Ap(2), 500, PhyRate::kB2);
  const Micros cts_air = cts.AirTimeMicros();
  script.Push(std::move(cts), script.now);
  Frame data = MakeData(MacAddress::Client(1), MacAddress::Ap(2),
                        MacAddress::Ap(2), 20, Bytes(300), PhyRate::kG24,
                        true, false);
  const Micros data_air = data.AirTimeMicros();
  script.Push(std::move(data), script.now + cts_air + kSifs);
  Frame ack = MakeAck(MacAddress::Ap(2), PhyRate::kG24);
  script.Push(std::move(ack),
              script.now + cts_air + kSifs + data_air + kSifs);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_GE(a.cts_jframe, 0);
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_TRUE(a.acked);
}

TEST(LinkAttempts, RtsCtsDataAckTransaction) {
  JFrameScript script;
  const PhyRate ctrl = PhyRate::kB2;
  Frame rts = MakeRts(MacAddress::Ap(0), MacAddress::Client(1), 2000, ctrl);
  const Micros rts_air = rts.AirTimeMicros();
  script.Push(std::move(rts), script.now);
  Frame cts;
  cts.type = FrameType::kCts;
  cts.addr1 = MacAddress::Client(1);  // answers the RTS sender
  cts.duration_us = 1500;
  cts.rate = ctrl;
  const Micros cts_air = cts.AirTimeMicros();
  script.Push(std::move(cts), script.now + rts_air + kSifs);
  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 42, Bytes(800), PhyRate::kB11,
                        false, true);
  const Micros data_air = data.AirTimeMicros();
  const UniversalMicros data_at = script.now + rts_air + kSifs + cts_air +
                                  kSifs;
  script.Push(std::move(data), data_at);
  Frame ack = MakeAck(MacAddress::Client(1), ctrl);
  script.Push(std::move(ack), data_at + data_air + kSifs);

  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_GE(a.rts_jframe, 0);
  EXPECT_GE(a.cts_jframe, 0);
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_TRUE(a.acked);
  EXPECT_EQ(a.sequence, 42);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkAttempts, LateAckNotAssigned) {
  // An ACK far beyond the duration-field deadline must not attach to the
  // earlier DATA (the timing analysis the paper calls critical).
  JFrameScript script;
  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 5, Bytes(50), PhyRate::kB2, false,
                        true);
  script.Push(std::move(data), script.now);
  Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  script.Push(std::move(ack), script.now + 50'000);  // 50 ms later
  const auto link = ReconstructLink(script.jframes);
  // The DATA attempt is unacked; the orphan ACK forms an inferred attempt.
  ASSERT_EQ(link.attempts.size(), 2u);
  EXPECT_FALSE(link.attempts[0].acked);
  EXPECT_TRUE(link.attempts[1].acked);
  EXPECT_TRUE(link.attempts[1].inferred);
  EXPECT_EQ(link.stats.orphan_acks, 1u);
}

TEST(LinkExchanges, RetransmissionsCoalesce) {
  JFrameScript script;
  script.DataAck(1, 7, /*retry=*/false, /*with_ack=*/false);
  script.DataAck(1, 7, /*retry=*/true, /*with_ack=*/false);
  script.DataAck(1, 7, /*retry=*/true, /*with_ack=*/true);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.attempts.size(), 3u);
  ASSERT_EQ(link.exchanges.size(), 1u);
  const auto& ex = link.exchanges[0];
  EXPECT_EQ(ex.attempts.size(), 3u);
  EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, SequenceDeltaOneStartsNewExchange) {
  JFrameScript script;
  script.DataAck(1, 7);
  script.DataAck(1, 8);
  script.DataAck(1, 9);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 3u);
  for (const auto& ex : link.exchanges) {
    EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
    EXPECT_EQ(ex.attempts.size(), 1u);
  }
}

TEST(LinkExchanges, SequenceWrapHandled) {
  JFrameScript script;
  script.DataAck(1, 0x0FFF);
  script.DataAck(1, 0x0000);  // 12-bit wraparound is delta 1
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 0u);
}

TEST(LinkExchanges, SequenceGapFlushesWithoutInference) {
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(1, 9);  // delta 4: rule R4
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 1u);
  EXPECT_FALSE(link.exchanges[1].needed_inference);
}

TEST(LinkExchanges, BroadcastIsItsOwnExchange) {
  JFrameScript script;
  Frame bcast = MakeData(MacAddress::Broadcast(), MacAddress::Ap(0),
                         MacAddress::Ap(0), 3, Bytes(60), PhyRate::kB1, true,
                         false);
  script.Push(std::move(bcast), script.now);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_TRUE(link.exchanges[0].broadcast);
  EXPECT_EQ(link.exchanges[0].attempts.size(), 1u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, MissedDataInferredFromOrphanAck) {
  // DATA(seq 5) unacked; the monitors miss the retransmitted DATA but hear
  // its ACK.  The heuristic assigns the orphan ACK to the open exchange.
  JFrameScript script;
  script.DataAck(1, 5, false, /*with_ack=*/false);
  Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  script.Push(std::move(ack), script.now + 2'000);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  const auto& ex = link.exchanges[0];
  EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
  EXPECT_TRUE(ex.needed_inference);
  EXPECT_EQ(ex.attempts.size(), 2u);
}

TEST(LinkExchanges, UnackedSingleAttemptIsAmbiguous) {
  JFrameScript script;
  script.DataAck(1, 5, false, /*with_ack=*/false);
  script.DataAck(1, 6);  // sender moved on
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kAmbiguous);
  EXPECT_EQ(link.exchanges[1].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, RetryLimitExhaustionIsNotDelivered) {
  JFrameScript script;
  script.DataAck(1, 5, false, false);
  for (int i = 0; i < kShortRetryLimit; ++i) {
    script.DataAck(1, 5, true, false);
  }
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].attempts.size(),
            static_cast<std::size_t>(kShortRetryLimit) + 1);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kNotDelivered);
}

TEST(LinkExchanges, FirstAttemptWithRetryBitNeedsInference) {
  // Seeing only a retry means the original attempt was missed.
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(1, 6, /*retry=*/true);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 2u);
  EXPECT_TRUE(link.exchanges[1].needed_inference);
}

TEST(LinkStats, InferenceRatesComputed) {
  JFrameScript script;
  for (std::uint16_t s = 1; s <= 50; ++s) script.DataAck(1, s);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.stats.attempts, 50u);
  EXPECT_EQ(link.stats.exchanges, 50u);
  EXPECT_EQ(link.stats.AttemptInferenceRate(), 0.0);
  EXPECT_EQ(link.stats.ExchangeInferenceRate(), 0.0);
}

TEST(LinkExchanges, InterleavedSendersIndependent) {
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(2, 100);
  script.DataAck(1, 6);
  script.DataAck(2, 101);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 4u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 0u);
}

// --- FSM timing/inference regressions --------------------------------------

TEST(LinkAttempts, RtsDeadlineUsesControlResponseRate) {
  // The CTS answering an RTS is sent at the control-response rate, not the
  // RTS's own rate.  At kB11 the difference (248 us vs 203 us of CTS air
  // time) exceeds the ack slack, so a deadline computed from the RTS rate
  // splits a perfectly valid RTS/CTS/DATA/ACK transaction in two.
  JFrameScript script;
  const PhyRate rts_rate = PhyRate::kB11;
  Frame rts = MakeRts(MacAddress::Client(1), MacAddress::Ap(0), 2000,
                      rts_rate);
  const Micros rts_air = rts.AirTimeMicros();
  script.Push(std::move(rts), script.now);
  Frame cts;
  cts.type = FrameType::kCts;
  cts.addr1 = MacAddress::Ap(0);  // answers the RTS sender
  cts.duration_us = 1500;
  cts.rate = ControlResponseRate(rts_rate);
  const Micros cts_air = cts.AirTimeMicros();
  script.Push(std::move(cts), script.now + rts_air + kSifs);
  Frame data = MakeData(MacAddress::Client(1), MacAddress::Ap(0),
                        MacAddress::Ap(0), 42, Bytes(800), rts_rate, true,
                        false);
  const Micros data_air = data.AirTimeMicros();
  const UniversalMicros data_at =
      script.now + rts_air + kSifs + cts_air + kSifs;
  script.Push(std::move(data), data_at);
  Frame ack = MakeAck(MacAddress::Ap(0), ControlResponseRate(rts_rate));
  script.Push(std::move(ack), data_at + data_air + kSifs);

  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_GE(a.rts_jframe, 0);
  EXPECT_GE(a.cts_jframe, 0);
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_TRUE(a.acked);
  EXPECT_FALSE(a.inferred);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkAttempts, AbandonedCtsToSelfMarkedInferred) {
  // A CTS-to-self whose DATA misses the deadline leaves an attempt
  // assembled from a control frame alone — that grouping is inference and
  // must be flagged as such (the pre-fix check sat behind a reset that made
  // it unreachable).
  JFrameScript script;
  Frame cts = MakeCtsToSelf(MacAddress::Ap(2), 500, PhyRate::kB2);
  script.Push(std::move(cts), script.now);
  // Same sender transmits again long after the protected window lapsed.
  Frame data = MakeData(MacAddress::Client(1), MacAddress::Ap(2),
                        MacAddress::Ap(2), 20, Bytes(300), PhyRate::kG24,
                        true, false);
  script.Push(std::move(data), script.now + 10'000);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 2u);
  const auto& abandoned = link.attempts[0];
  EXPECT_GE(abandoned.cts_jframe, 0);
  EXPECT_LT(abandoned.data_jframe, 0);
  EXPECT_TRUE(abandoned.inferred);
  EXPECT_FALSE(link.attempts[1].inferred);
  EXPECT_EQ(link.stats.attempts_inferred, 1u);
}

TEST(LinkExchanges, RetryLimitBoundaryExactlyExhausted) {
  // The short retry limit counts transmissions of one MSDU: a sender that
  // shows exactly kShortRetryLimit attempts exhausted its budget, so the
  // exchange is kNotDelivered — not kAmbiguous (the pre-fix off-by-one
  // demanded one attempt more than a compliant sender will ever make).
  JFrameScript script;
  script.DataAck(1, 5, /*retry=*/false, /*with_ack=*/false);
  for (int i = 0; i < kShortRetryLimit - 1; ++i) {
    script.DataAck(1, 5, /*retry=*/true, /*with_ack=*/false);
  }
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].attempts.size(),
            static_cast<std::size_t>(kShortRetryLimit));
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kNotDelivered);
}

TEST(LinkExchanges, RetryLimitBoundaryOneBelowIsAmbiguous) {
  JFrameScript script;
  script.DataAck(1, 5, /*retry=*/false, /*with_ack=*/false);
  for (int i = 0; i < kShortRetryLimit - 2; ++i) {
    script.DataAck(1, 5, /*retry=*/true, /*with_ack=*/false);
  }
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].attempts.size(),
            static_cast<std::size_t>(kShortRetryLimit) - 1);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kAmbiguous);
}

// --- Streaming (windowed) reconstruction ------------------------------------

// A busy script exercising every FSM path, including exchanges straddling
// the 500 ms emission window (timeout-closed exchange reopened by a late
// retransmission).
JFrameScript CompositeScript() {
  JFrameScript script;
  script.DataAck(1, 10);
  script.DataAck(2, 100);
  script.DataAck(1, 11, /*retry=*/false, /*with_ack=*/false);
  script.DataAck(1, 11, /*retry=*/true);  // retransmission coalesces
  Frame bcast = MakeData(MacAddress::Broadcast(), MacAddress::Ap(0),
                         MacAddress::Ap(0), 3, Bytes(60), PhyRate::kB1, true,
                         false);
  script.Push(std::move(bcast), script.now);
  script.now += 500;
  script.DataAck(2, 101, /*retry=*/false, /*with_ack=*/false);
  Frame orphan = MakeAck(MacAddress::Client(2), PhyRate::kB2);
  script.Push(std::move(orphan), script.now + 2'000);  // inferred retry ACK
  script.now += 4'000;
  script.DataAck(3, 7, /*retry=*/false, /*with_ack=*/false);
  // Straddle the window: the open exchange times out, then a late delta-0
  // retransmission reopens it as a new inferred exchange.
  script.now += 600'000;
  script.DataAck(3, 7, /*retry=*/true);
  script.DataAck(3, 12);  // sequence gap flush (R4)
  Frame cts = MakeCtsToSelf(MacAddress::Ap(2), 400, PhyRate::kB2);
  script.Push(std::move(cts), script.now);
  script.now += 8'000;  // DATA misses the protected window: inferred attempt
  script.DataAck(1, 12);
  for (int i = 0; i < kShortRetryLimit; ++i) {
    script.DataAck(4, 30, /*retry=*/i > 0, /*with_ack=*/false);
  }
  script.now += 700'000;  // trailing idle so timers can fire mid-stream
  script.DataAck(1, 13);
  return script;
}

TEST(LinkStreaming, IncrementalMatchesBatchByteForByte) {
  JFrameScript script = CompositeScript();
  const auto batch = ReconstructLink(script.jframes);

  LinkReconstruction streamed;
  std::size_t exchanges_before_flush = 0;
  LinkReconstructor reconstructor(
      {},
      [&](const TransmissionAttempt& a) { streamed.attempts.push_back(a); },
      [&](const FrameExchange& ex) { streamed.exchanges.push_back(ex); });
  for (const JFrame& jf : script.jframes) reconstructor.OnJFrame(jf);
  exchanges_before_flush = streamed.exchanges.size();
  reconstructor.Flush();
  streamed.stats = reconstructor.stats();

  // The window must actually stream: the 600+ ms gaps push the watermark
  // past earlier exchanges long before end of stream.
  EXPECT_GT(exchanges_before_flush, 0u);
  EXPECT_LT(exchanges_before_flush, streamed.exchanges.size());
  ExpectLinkIdentical(streamed, batch);
  // Emission order is the batch vector order: sorted by start.
  for (std::size_t i = 1; i < streamed.attempts.size(); ++i) {
    EXPECT_LE(streamed.attempts[i - 1].start, streamed.attempts[i].start);
  }
  for (std::size_t i = 1; i < streamed.exchanges.size(); ++i) {
    EXPECT_LE(streamed.exchanges[i - 1].start, streamed.exchanges[i].start);
  }
}

TEST(LinkStreaming, WindowedEmissionBoundsLiveState) {
  // Exchanges a second apart must be emitted as the stream advances, and
  // the low watermark must chase the stream head — O(window) retention.
  JFrameScript script;
  for (std::uint16_t s = 1; s <= 20; ++s) {
    script.DataAck(1, s);
    script.now += Seconds(1);
  }
  LinkReconstructor reconstructor({}, nullptr, nullptr);
  std::uint64_t max_live_span = 0;
  for (const JFrame& jf : script.jframes) {
    reconstructor.OnJFrame(jf);
    max_live_span = std::max(
        max_live_span,
        reconstructor.jframes_seen() - reconstructor.min_live_jframe());
  }
  EXPECT_GE(reconstructor.exchanges_emitted(), 18u);
  // Each 1 s step retires everything but the newest exchange: the live
  // span never approaches the 40-jframe stream.
  EXPECT_LE(max_live_span, 6u);
  reconstructor.Flush();
  EXPECT_EQ(reconstructor.exchanges_emitted(), 20u);
  EXPECT_EQ(reconstructor.min_live_jframe(), reconstructor.jframes_seen());
  EXPECT_EQ(reconstructor.stats().exchanges, 20u);
}

}  // namespace
}  // namespace jig
