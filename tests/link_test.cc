#include "jigsaw/link.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

// Builds decoded jframes directly (bypassing the unifier) so attempt and
// exchange assembly can be tested against exact scripts.
class JFrameScript {
 public:
  UniversalMicros now = 1'000'000;

  JFrame& Push(Frame f, UniversalMicros at) {
    JFrame jf;
    jf.timestamp = at;
    jf.rate = f.rate;
    const Bytes wire = f.Serialize();
    jf.wire_len = static_cast<std::uint32_t>(wire.size());
    jf.digest = ContentDigest(wire);
    jf.frame = std::move(f);
    FrameInstance inst;
    inst.radio = 0;
    inst.outcome = RxOutcome::kOk;
    inst.universal_timestamp = at;
    jf.instances.push_back(inst);
    jframes.push_back(std::move(jf));
    return jframes.back();
  }

  // One complete DATA+ACK transaction from client c; returns end time.
  UniversalMicros DataAck(std::uint16_t client, std::uint16_t seq,
                          bool retry = false, bool with_ack = true,
                          PhyRate rate = PhyRate::kB2) {
    Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(client),
                          MacAddress::Ap(0), seq, Bytes(50), rate, false,
                          true);
    data.retry = retry;
    const Micros air = data.AirTimeMicros();
    Push(std::move(data), now);
    UniversalMicros t = now + air;
    if (with_ack) {
      Frame ack = MakeAck(MacAddress::Client(client),
                          ControlResponseRate(rate));
      Push(std::move(ack), t + kSifs);
      t += kSifs + TxDurationMicros(ControlResponseRate(rate), kAckBytes);
    }
    now = t + 200;  // inter-transaction gap
    return t;
  }

  std::vector<JFrame> jframes;
};

TEST(LinkAttempts, DataAckGroupsIntoOneAttempt) {
  JFrameScript script;
  script.DataAck(1, 10);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_TRUE(a.acked);
  EXPECT_EQ(a.sequence, 10);
  EXPECT_EQ(a.transmitter, MacAddress::Client(1));
  EXPECT_EQ(a.receiver, MacAddress::Ap(0));
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_FALSE(a.inferred);
}

TEST(LinkAttempts, CtsToSelfDataAckTransaction) {
  JFrameScript script;
  // CTS-to-self, SIFS, DATA at OFDM, SIFS, ACK — the protected sequence.
  Frame cts = MakeCtsToSelf(MacAddress::Ap(2), 500, PhyRate::kB2);
  const Micros cts_air = cts.AirTimeMicros();
  script.Push(std::move(cts), script.now);
  Frame data = MakeData(MacAddress::Client(1), MacAddress::Ap(2),
                        MacAddress::Ap(2), 20, Bytes(300), PhyRate::kG24,
                        true, false);
  const Micros data_air = data.AirTimeMicros();
  script.Push(std::move(data), script.now + cts_air + kSifs);
  Frame ack = MakeAck(MacAddress::Ap(2), PhyRate::kG24);
  script.Push(std::move(ack),
              script.now + cts_air + kSifs + data_air + kSifs);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_GE(a.cts_jframe, 0);
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_TRUE(a.acked);
}

TEST(LinkAttempts, RtsCtsDataAckTransaction) {
  JFrameScript script;
  const PhyRate ctrl = PhyRate::kB2;
  Frame rts = MakeRts(MacAddress::Ap(0), MacAddress::Client(1), 2000, ctrl);
  const Micros rts_air = rts.AirTimeMicros();
  script.Push(std::move(rts), script.now);
  Frame cts;
  cts.type = FrameType::kCts;
  cts.addr1 = MacAddress::Client(1);  // answers the RTS sender
  cts.duration_us = 1500;
  cts.rate = ctrl;
  const Micros cts_air = cts.AirTimeMicros();
  script.Push(std::move(cts), script.now + rts_air + kSifs);
  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 42, Bytes(800), PhyRate::kB11,
                        false, true);
  const Micros data_air = data.AirTimeMicros();
  const UniversalMicros data_at = script.now + rts_air + kSifs + cts_air +
                                  kSifs;
  script.Push(std::move(data), data_at);
  Frame ack = MakeAck(MacAddress::Client(1), ctrl);
  script.Push(std::move(ack), data_at + data_air + kSifs);

  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.attempts.size(), 1u);
  const auto& a = link.attempts[0];
  EXPECT_GE(a.rts_jframe, 0);
  EXPECT_GE(a.cts_jframe, 0);
  EXPECT_GE(a.data_jframe, 0);
  EXPECT_GE(a.ack_jframe, 0);
  EXPECT_TRUE(a.acked);
  EXPECT_EQ(a.sequence, 42);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkAttempts, LateAckNotAssigned) {
  // An ACK far beyond the duration-field deadline must not attach to the
  // earlier DATA (the timing analysis the paper calls critical).
  JFrameScript script;
  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 5, Bytes(50), PhyRate::kB2, false,
                        true);
  script.Push(std::move(data), script.now);
  Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  script.Push(std::move(ack), script.now + 50'000);  // 50 ms later
  const auto link = ReconstructLink(script.jframes);
  // The DATA attempt is unacked; the orphan ACK forms an inferred attempt.
  ASSERT_EQ(link.attempts.size(), 2u);
  EXPECT_FALSE(link.attempts[0].acked);
  EXPECT_TRUE(link.attempts[1].acked);
  EXPECT_TRUE(link.attempts[1].inferred);
  EXPECT_EQ(link.stats.orphan_acks, 1u);
}

TEST(LinkExchanges, RetransmissionsCoalesce) {
  JFrameScript script;
  script.DataAck(1, 7, /*retry=*/false, /*with_ack=*/false);
  script.DataAck(1, 7, /*retry=*/true, /*with_ack=*/false);
  script.DataAck(1, 7, /*retry=*/true, /*with_ack=*/true);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.attempts.size(), 3u);
  ASSERT_EQ(link.exchanges.size(), 1u);
  const auto& ex = link.exchanges[0];
  EXPECT_EQ(ex.attempts.size(), 3u);
  EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, SequenceDeltaOneStartsNewExchange) {
  JFrameScript script;
  script.DataAck(1, 7);
  script.DataAck(1, 8);
  script.DataAck(1, 9);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 3u);
  for (const auto& ex : link.exchanges) {
    EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
    EXPECT_EQ(ex.attempts.size(), 1u);
  }
}

TEST(LinkExchanges, SequenceWrapHandled) {
  JFrameScript script;
  script.DataAck(1, 0x0FFF);
  script.DataAck(1, 0x0000);  // 12-bit wraparound is delta 1
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 0u);
}

TEST(LinkExchanges, SequenceGapFlushesWithoutInference) {
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(1, 9);  // delta 4: rule R4
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 1u);
  EXPECT_FALSE(link.exchanges[1].needed_inference);
}

TEST(LinkExchanges, BroadcastIsItsOwnExchange) {
  JFrameScript script;
  Frame bcast = MakeData(MacAddress::Broadcast(), MacAddress::Ap(0),
                         MacAddress::Ap(0), 3, Bytes(60), PhyRate::kB1, true,
                         false);
  script.Push(std::move(bcast), script.now);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_TRUE(link.exchanges[0].broadcast);
  EXPECT_EQ(link.exchanges[0].attempts.size(), 1u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, MissedDataInferredFromOrphanAck) {
  // DATA(seq 5) unacked; the monitors miss the retransmitted DATA but hear
  // its ACK.  The heuristic assigns the orphan ACK to the open exchange.
  JFrameScript script;
  script.DataAck(1, 5, false, /*with_ack=*/false);
  Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  script.Push(std::move(ack), script.now + 2'000);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  const auto& ex = link.exchanges[0];
  EXPECT_EQ(ex.outcome, ExchangeOutcome::kDelivered);
  EXPECT_TRUE(ex.needed_inference);
  EXPECT_EQ(ex.attempts.size(), 2u);
}

TEST(LinkExchanges, UnackedSingleAttemptIsAmbiguous) {
  JFrameScript script;
  script.DataAck(1, 5, false, /*with_ack=*/false);
  script.DataAck(1, 6);  // sender moved on
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 2u);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kAmbiguous);
  EXPECT_EQ(link.exchanges[1].outcome, ExchangeOutcome::kDelivered);
}

TEST(LinkExchanges, RetryLimitExhaustionIsNotDelivered) {
  JFrameScript script;
  script.DataAck(1, 5, false, false);
  for (int i = 0; i < kShortRetryLimit; ++i) {
    script.DataAck(1, 5, true, false);
  }
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 1u);
  EXPECT_EQ(link.exchanges[0].attempts.size(),
            static_cast<std::size_t>(kShortRetryLimit) + 1);
  EXPECT_EQ(link.exchanges[0].outcome, ExchangeOutcome::kNotDelivered);
}

TEST(LinkExchanges, FirstAttemptWithRetryBitNeedsInference) {
  // Seeing only a retry means the original attempt was missed.
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(1, 6, /*retry=*/true);
  const auto link = ReconstructLink(script.jframes);
  ASSERT_EQ(link.exchanges.size(), 2u);
  EXPECT_TRUE(link.exchanges[1].needed_inference);
}

TEST(LinkStats, InferenceRatesComputed) {
  JFrameScript script;
  for (std::uint16_t s = 1; s <= 50; ++s) script.DataAck(1, s);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.stats.attempts, 50u);
  EXPECT_EQ(link.stats.exchanges, 50u);
  EXPECT_EQ(link.stats.AttemptInferenceRate(), 0.0);
  EXPECT_EQ(link.stats.ExchangeInferenceRate(), 0.0);
}

TEST(LinkExchanges, InterleavedSendersIndependent) {
  JFrameScript script;
  script.DataAck(1, 5);
  script.DataAck(2, 100);
  script.DataAck(1, 6);
  script.DataAck(2, 101);
  const auto link = ReconstructLink(script.jframes);
  EXPECT_EQ(link.exchanges.size(), 4u);
  EXPECT_EQ(link.stats.sequence_gaps_flushed, 0u);
}

}  // namespace
}  // namespace jig
