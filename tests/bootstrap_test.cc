#include "jigsaw/bootstrap.h"

#include <gtest/gtest.h>

#include "synthetic.h"
#include "util/rng.h"

namespace jig {
namespace {

using testing::SyntheticNetwork;
using testing::SyntheticRadio;

// Offsets must agree pairwise: (T_j - T_i) must equal the true offset
// difference for synced radios.
void ExpectConsistentOffsets(const BootstrapResult& result,
                             const std::vector<SyntheticRadio>& radios,
                             double tolerance_us = 2.0) {
  for (std::size_t i = 0; i < radios.size(); ++i) {
    for (std::size_t j = 0; j < radios.size(); ++j) {
      if (!result.synced[i] || !result.synced[j]) continue;
      const double got = result.offset_us[j] - result.offset_us[i];
      const double want = radios[i].offset_us - radios[j].offset_us;
      EXPECT_NEAR(got, want, tolerance_us) << "radios " << i << "," << j;
    }
  }
}

TEST(Bootstrap, TwoRadiosSharedFrame) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 1000.0},
      {.id = 1, .monitor = 1, .offset_us = -2500.0},
  };
  SyntheticNetwork net(radios);
  net.Data(100'000, 1, 10, {0, 1});
  net.Data(200'000, 1, 11, {0, 1});
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_TRUE(result.AllSynced());
  ExpectConsistentOffsets(result, radios);
}

TEST(Bootstrap, TransitiveChain) {
  // r0 -- r1 -- r2 -- r3: no frame spans non-adjacent radios (the paper's
  // core scenario: no single frame covers the building).
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0},
      {.id = 1, .monitor = 1, .offset_us = 5000.0},
      {.id = 2, .monitor = 2, .offset_us = -800.0},
      {.id = 3, .monitor = 3, .offset_us = 120.0},
  };
  SyntheticNetwork net(radios);
  net.Data(50'000, 1, 1, {0, 1});
  net.Data(150'000, 2, 2, {1, 2});
  net.Data(250'000, 3, 3, {2, 3});
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_TRUE(result.AllSynced());
  EXPECT_GE(result.max_bfs_depth, 2);
  ExpectConsistentOffsets(result, radios);
}

TEST(Bootstrap, CrossChannelBridgeViaSharedClock) {
  // Radios 0/1 share monitor 0's clock but listen on different channels;
  // radio 2 shares frames only with radio 1 (channel 6).  Radio 0 (channel
  // 1) must still synchronize through the shared clock.
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .channel = Channel::kCh1, .offset_us = 700.0},
      {.id = 1, .monitor = 0, .channel = Channel::kCh6, .offset_us = 700.0},
      {.id = 2, .monitor = 1, .channel = Channel::kCh6, .offset_us = -300.0},
  };
  SyntheticNetwork net(radios);
  net.Data(80'000, 1, 5, {1, 2});  // channel-6 frame only
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_TRUE(result.AllSynced());
  ExpectConsistentOffsets(result, radios);
}

TEST(Bootstrap, PartitionDetected) {
  // Radios {0,1} and {2,3} never share a frame or a clock: the second
  // island must be reported unsynced (paper: 10-pod configurations
  // partition the bootstrap and prevent unification).
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0},
      {.id = 1, .monitor = 1, .offset_us = 10.0},
      {.id = 2, .monitor = 2, .offset_us = 20.0},
      {.id = 3, .monitor = 3, .offset_us = 30.0},
  };
  SyntheticNetwork net(radios);
  net.Data(10'000, 1, 1, {0, 1});
  net.Data(20'000, 2, 2, {2, 3});
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_FALSE(result.AllSynced());
  EXPECT_EQ(result.SyncedCount(), 2u);
  EXPECT_TRUE(result.synced[0]);
  EXPECT_TRUE(result.synced[1]);
  EXPECT_FALSE(result.synced[2]);
  EXPECT_FALSE(result.synced[3]);
}

TEST(Bootstrap, RetransmissionsNotUsedAsReferences) {
  // Identical retransmitted frames would alias distinct transmissions; a
  // retry-bit frame alone must not synchronize the pair.
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0},
      {.id = 1, .monitor = 1, .offset_us = 999.0},
  };
  SyntheticNetwork net(radios);
  net.Data(10'000, 1, 1, {0, 1}, /*retry=*/true);
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_EQ(result.SyncedCount(), 1u);  // only the BFS root
}

TEST(Bootstrap, WindowExcludesLateFrames) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0},
      {.id = 1, .monitor = 1, .offset_us = 50.0},
  };
  SyntheticNetwork net(radios);
  net.Data(100, 1, 1, {0});          // anchors both traces' starts
  net.Data(200, 2, 1, {1});
  net.Data(Seconds(5), 1, 7, {0, 1});  // outside the 1 s window
  auto traces = net.Build();
  BootstrapConfig cfg;
  cfg.window = Seconds(1);
  const auto result = BootstrapSynchronize(traces, cfg);
  EXPECT_EQ(result.SyncedCount(), 1u);
  // Widening the window (the paper's documented fallback) recovers sync.
  cfg.window = Seconds(10);
  const auto wide = BootstrapSynchronize(traces, cfg);
  EXPECT_TRUE(wide.AllSynced());
}

TEST(Bootstrap, ManyRadiosRandomOffsetsProperty) {
  // Property test: random offsets, randomized overlapping reference sets;
  // all offsets must be recovered through transitive paths.
  Rng rng(77);
  std::vector<SyntheticRadio> radios;
  for (RadioId i = 0; i < 24; ++i) {
    radios.push_back(SyntheticRadio{
        .id = i,
        .monitor = static_cast<std::uint16_t>(i),
        .offset_us = static_cast<double>(rng.NextInt(-500'000, 500'000)),
        .ntp_error_us = rng.NextInt(-3000, 3000)});
  }
  SyntheticNetwork net(radios);
  std::uint16_t seq = 1;
  for (int k = 0; k < 60; ++k) {
    // Each frame heard by a contiguous window of 3-6 radios: overlapping
    // sets chain the whole population together.
    const int width = 3 + static_cast<int>(rng.NextBelow(4));
    const int start = static_cast<int>(
        rng.NextBelow(radios.size() - static_cast<std::size_t>(width) + 1));
    std::vector<RadioId> heard;
    for (int i = start; i < start + width; ++i) {
      heard.push_back(static_cast<RadioId>(i));
    }
    net.Data(1000 + k * 12'000, static_cast<std::uint16_t>(1 + k % 5), seq++,
             heard);
  }
  auto traces = net.Build();
  const auto result = BootstrapSynchronize(traces);
  EXPECT_TRUE(result.AllSynced());
  ExpectConsistentOffsets(result, radios, 3.0);
}

TEST(Bootstrap, EmptySetThrows) {
  TraceSet empty;
  EXPECT_THROW(BootstrapSynchronize(empty), std::runtime_error);
}

}  // namespace
}  // namespace jig
