#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace jig {
namespace {

std::vector<std::uint8_t> AsBytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // Standard IEEE 802.3 / zlib CRC-32 test vectors.
  EXPECT_EQ(Crc32(AsBytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(AsBytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(AsBytes("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(AsBytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = AsBytes("jigsaw unifies 802.11 traces");
  Crc32Accumulator acc;
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32Accumulator two_part;
    two_part.Update(std::span(data.data(), split));
    two_part.Update(std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(two_part.Value(), Crc32(data)) << "split at " << split;
  }
  acc.Update(data);
  EXPECT_EQ(acc.Value(), Crc32(data));
}

TEST(Crc32, ValueIsNonDestructive) {
  Crc32Accumulator acc;
  acc.Update(AsBytes("abc"));
  const auto first = acc.Value();
  EXPECT_EQ(acc.Value(), first);
  acc.Update(AsBytes("def"));
  EXPECT_NE(acc.Value(), first);
  EXPECT_EQ(acc.Value(), Crc32(AsBytes("abcdef")));
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  auto data = AsBytes("frame check sequence sensitivity");
  const auto original = Crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 3) {
    for (int bit = 0; bit < 8; bit += 2) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32(data), original)
          << "flip byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(Crc32(data), original);
}

class Crc32LengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32LengthTest, DeterministicPerLength) {
  std::vector<std::uint8_t> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  EXPECT_EQ(Crc32(data), Crc32(data));
  if (!data.empty()) {
    auto copy = data;
    copy.back() ^= 0xFF;
    EXPECT_NE(Crc32(copy), Crc32(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Crc32LengthTest,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 63, 64, 255,
                                           1024, 1500));

}  // namespace
}  // namespace jig
