#include "util/crc32.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <span>
#include <string>
#include <vector>

namespace jig {
namespace {

std::vector<std::uint8_t> AsBytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // Standard IEEE 802.3 / zlib CRC-32 test vectors.
  EXPECT_EQ(Crc32(AsBytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(AsBytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(AsBytes("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(AsBytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = AsBytes("jigsaw unifies 802.11 traces");
  Crc32Accumulator acc;
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32Accumulator two_part;
    two_part.Update(std::span(data.data(), split));
    two_part.Update(std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(two_part.Value(), Crc32(data)) << "split at " << split;
  }
  acc.Update(data);
  EXPECT_EQ(acc.Value(), Crc32(data));
}

TEST(Crc32, ValueIsNonDestructive) {
  Crc32Accumulator acc;
  acc.Update(AsBytes("abc"));
  const auto first = acc.Value();
  EXPECT_EQ(acc.Value(), first);
  acc.Update(AsBytes("def"));
  EXPECT_NE(acc.Value(), first);
  EXPECT_EQ(acc.Value(), Crc32(AsBytes("abcdef")));
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  auto data = AsBytes("frame check sequence sensitivity");
  const auto original = Crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 3) {
    for (int bit = 0; bit < 8; bit += 2) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32(data), original)
          << "flip byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(Crc32(data), original);
}

class Crc32LengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32LengthTest, DeterministicPerLength) {
  std::vector<std::uint8_t> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  EXPECT_EQ(Crc32(data), Crc32(data));
  if (!data.empty()) {
    auto copy = data;
    copy.back() ^= 0xFF;
    EXPECT_NE(Crc32(copy), Crc32(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Crc32LengthTest,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 63, 64, 255,
                                           1024, 1500));

// ---- differential coverage of the dispatched engines ----------------------
//
// Crc32() routes through slice-by-8 and (on capable hardware) PCLMUL/ARM
// CRC fast paths.  Every one of them must agree with the byte-at-a-time
// reference loop on arbitrary buffers — lengths straddling the 64-byte
// hardware cutover, unaligned starts, and chunked accumulation.

std::vector<std::uint8_t> PseudoRandom(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : out) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return out;
}

std::uint32_t ReferenceCrc(std::span<const std::uint8_t> data) {
  return internal::Crc32Reference(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

TEST(Crc32Differential, ActiveImplIsOneOfTheKnownEngines) {
  const Crc32Impl impl = ActiveCrc32Impl();
  EXPECT_TRUE(impl == Crc32Impl::kSliceBy8 || impl == Crc32Impl::kClmul ||
              impl == Crc32Impl::kArmCrc);
}

TEST(Crc32Differential, DispatchedMatchesReferenceAcrossLengths) {
  // Every length 0..300, then strides through block-sized buffers: covers
  // the <64-byte slice-by-8-only range, the hardware cutover, alignment
  // head/tail handling, and multi-fold runs.
  for (std::size_t len = 0; len <= 300; ++len) {
    const auto data = PseudoRandom(len, len + 1);
    EXPECT_EQ(Crc32(data), ReferenceCrc(data)) << "len " << len;
  }
  for (std::size_t len : {512u, 1000u, 1500u, 4096u, 65537u}) {
    const auto data = PseudoRandom(len, len);
    EXPECT_EQ(Crc32(data), ReferenceCrc(data)) << "len " << len;
  }
}

TEST(Crc32Differential, SliceBy8MatchesReferenceEvenWhenNotDispatched) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 333u, 4096u}) {
    const auto data = PseudoRandom(len, len * 7 + 3);
    EXPECT_EQ(internal::Crc32SliceBy8(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu,
              ReferenceCrc(data))
        << "len " << len;
  }
}

TEST(Crc32Differential, UnalignedStartsMatchReference) {
  const auto data = PseudoRandom(4096 + 16, 42);
  for (std::size_t off = 0; off < 16; ++off) {
    const std::span<const std::uint8_t> view(data.data() + off, 4096);
    EXPECT_EQ(Crc32(view), ReferenceCrc(view)) << "offset " << off;
  }
}

TEST(Crc32Differential, ChunkedAccumulatorMatchesReference) {
  // Feed one buffer in awkward chunk sizes (1, 3, 17, 64, 255...) so the
  // accumulator repeatedly enters and leaves the hardware path mid-stream.
  const auto data = PseudoRandom(10000, 7);
  const std::size_t chunks[] = {1, 3, 17, 64, 255, 1000};
  std::size_t pos = 0;
  std::size_t which = 0;
  Crc32Accumulator acc;
  while (pos < data.size()) {
    const std::size_t take =
        std::min(chunks[which++ % std::size(chunks)], data.size() - pos);
    acc.Update(std::span(data.data() + pos, take));
    pos += take;
  }
  EXPECT_EQ(acc.Value(), ReferenceCrc(data));
}

}  // namespace
}  // namespace jig
