#include "sim/mac.h"

#include <gtest/gtest.h>

#include "phy/propagation.h"
#include "sim/event_queue.h"

namespace jig {
namespace {

// Clean-room medium: no shadowing/fading, so geometry alone decides links.
PropagationConfig CleanAir() {
  PropagationConfig cfg;
  cfg.path_loss_exponent = 3.0;
  cfg.wall_loss_db = 0.0;
  cfg.floor_loss_db = 0.0;
  cfg.shadowing_sigma_db = 0.0;
  cfg.fading_sigma_db = 0.0;
  cfg.slow_fading_sigma_db = 0.0;
  return cfg;
}

class MacTest : public ::testing::Test {
 protected:
  MacTest()
      : propagation_(BuildingModel{}, CleanAir()),
        medium_(events_, propagation_, Rng(1), &truth_) {}

  Mac& AddStation(std::uint16_t index, Point3 pos, bool is_ap = false) {
    MacConfig cfg;
    cfg.tx_power_dbm = 15.0;
    auto mac = std::make_unique<Mac>(
        events_, medium_, is_ap ? MacAddress::Ap(index)
                                : MacAddress::Client(index),
        pos, Channel::kCh1, Rng(100 + index), cfg);
    Mac& ref = *mac;
    stations_.push_back(std::move(mac));
    return ref;
  }

  EventQueue events_;
  PropagationModel propagation_;
  TruthLog truth_;
  Medium medium_;
  std::vector<std::unique_ptr<Mac>> stations_;
};

TEST_F(MacTest, UnicastDataDeliveredAndAcked) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  std::vector<Frame> received;
  b.set_rx_handler([&](const Frame& f) { received.push_back(f); });
  bool delivered = false;
  a.set_tx_status_handler([&](std::uint64_t, bool ok) { delivered = ok; });

  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(100, 0x42), false,
                true);
  events_.RunUntil(Seconds(1));

  EXPECT_TRUE(delivered);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].body.size(), 100u);
  EXPECT_EQ(a.counters().msdu_delivered, 1u);
  EXPECT_EQ(b.counters().acks_sent, 1u);
  EXPECT_EQ(a.counters().retries, 0u);
}

TEST_F(MacTest, SequenceNumbersIncrement) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  std::vector<std::uint16_t> seqs;
  b.set_rx_handler([&](const Frame& f) { seqs.push_back(f.sequence); });
  for (int i = 0; i < 5; ++i) {
    a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(20), false, true);
  }
  events_.RunUntil(Seconds(1));
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint16_t>((seqs[i] - seqs[i - 1]) & 0x0FFF),
              1u);
  }
}

TEST_F(MacTest, RetriesWhenReceiverOutOfRange) {
  Mac& a = AddStation(1, {10, 10, 2});
  // Receiver far beyond range: every attempt times out.
  Mac& b = AddStation(2, {2000, 10, 2});
  bool delivered = true;
  a.set_tx_status_handler([&](std::uint64_t, bool ok) { delivered = ok; });
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(50), false, true);
  events_.RunUntil(Seconds(2));

  EXPECT_FALSE(delivered);
  EXPECT_EQ(a.counters().msdu_failed, 1u);
  // Retry limit: 1 initial + kShortRetryLimit retries.
  EXPECT_EQ(a.counters().data_tx_attempts,
            static_cast<std::uint64_t>(kShortRetryLimit) + 1);
  EXPECT_EQ(a.counters().retries,
            static_cast<std::uint64_t>(kShortRetryLimit));
}

TEST_F(MacTest, RetryBitSetOnRetransmissions) {
  Mac& a = AddStation(1, {10, 10, 2});
  AddStation(2, {2000, 10, 2});  // unreachable receiver
  a.EnqueueData(MacAddress::Client(2), MacAddress::Ap(0), Bytes(50), false,
                true);
  events_.RunUntil(Seconds(2));
  int retries_seen = 0;
  int firsts = 0;
  for (const auto& e : truth_.entries()) {
    if (e.type != FrameType::kData) continue;
    if (e.retry) {
      ++retries_seen;
    } else {
      ++firsts;
    }
  }
  EXPECT_EQ(firsts, 1);
  EXPECT_EQ(retries_seen, kShortRetryLimit);
}

TEST_F(MacTest, DuplicateSuppressedWhenAckLost) {
  // Receiver hears sender, but we model an ACK loss by having the receiver
  // dedupe: send the same MSDU twice via retry and confirm single delivery.
  // (True ACK loss needs asymmetric links; duplicate filtering is what we
  // verify here.)
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  int deliveries = 0;
  b.set_rx_handler([&](const Frame&) { ++deliveries; });
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(10), false, true);
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(b.counters().rx_duplicates, 0u);
}

TEST_F(MacTest, BroadcastNotRetriedAndNotAcked) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  int received = 0;
  b.set_rx_handler([&](const Frame& f) {
    EXPECT_TRUE(f.IsBroadcast());
    ++received;
  });
  a.EnqueueData(MacAddress::Broadcast(), MacAddress::Ap(0), Bytes(30), false,
                true);
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b.counters().acks_sent, 0u);
  EXPECT_EQ(a.counters().msdu_delivered, 1u);
  EXPECT_EQ(a.counters().data_tx_attempts, 1u);
}

TEST_F(MacTest, ProtectionSendsCtsToSelfForOfdm) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  a.SeedRate(b.address(), PhyRate::kG24);
  a.SetProtection(true);
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(200), false, true);
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(a.counters().cts_self_sent, 1u);
  // The CTS-to-self precedes the DATA on the air.
  ASSERT_GE(truth_.size(), 2u);
  EXPECT_EQ(truth_.entries()[0].type, FrameType::kCts);
  EXPECT_EQ(truth_.entries()[1].type, FrameType::kData);
  EXPECT_TRUE(IsCck(PhyRate::kB2));
}

TEST_F(MacTest, NoCtsWhenProtectionOffOrCckRate) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {15, 10, 2});
  a.SeedRate(b.address(), PhyRate::kG24);
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(200), false, true);
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(a.counters().cts_self_sent, 0u);

  a.SetProtection(true);
  a.SeedRate(b.address(), PhyRate::kB11);  // CCK needs no protection
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(200), false, true);
  events_.RunUntil(Seconds(2));
  EXPECT_EQ(a.counters().cts_self_sent, 0u);
}

TEST_F(MacTest, CarrierSenseDefersSecondSender) {
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {12, 10, 2});
  Mac& c = AddStation(3, {11, 12, 2});
  b.set_rx_handler([](const Frame&) {});
  c.set_rx_handler([](const Frame&) {});
  // Two senders enqueue at the same instant toward a common receiver.
  a.EnqueueData(c.address(), MacAddress::Ap(0), Bytes(800), false, true);
  b.EnqueueData(c.address(), MacAddress::Ap(0), Bytes(800), false, true);
  events_.RunUntil(Seconds(1));
  // Both delivered: CSMA serialized them rather than colliding.
  EXPECT_EQ(a.counters().msdu_delivered, 1u);
  EXPECT_EQ(b.counters().msdu_delivered, 1u);
  // No overlapping DATA transmissions on the air.
  const auto& entries = truth_.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[i].type != FrameType::kData ||
          entries[j].type != FrameType::kData) {
        continue;
      }
      const bool overlap = entries[i].start < entries[j].end &&
                           entries[j].start < entries[i].end;
      EXPECT_FALSE(overlap) << "DATA frames " << i << "," << j << " overlap";
    }
  }
}

TEST_F(MacTest, HiddenTerminalsCollideAtReceiver) {
  // a and b cannot hear each other (far apart) but both reach c.
  Mac& a = AddStation(1, {0, 10, 2});
  Mac& b = AddStation(2, {90, 10, 2});
  Mac& c = AddStation(3, {45, 10, 2});
  c.set_rx_handler([](const Frame&) {});
  // Verify the hidden-terminal geometry first.
  const double ab =
      propagation_.MeanRssiDbm({0, 10, 2}, {90, 10, 2}, 15.0);
  ASSERT_LT(ab, CleanAir().carrier_sense_dbm);
  for (int i = 0; i < 10; ++i) {
    a.EnqueueData(c.address(), MacAddress::Ap(0), Bytes(1200), false, true);
    b.EnqueueData(c.address(), MacAddress::Ap(0), Bytes(1200), false, true);
  }
  events_.RunUntil(Seconds(5));
  // Hidden senders overlap and interfere: retries must occur.
  EXPECT_GT(a.counters().retries + b.counters().retries, 0u);
  bool interfered = false;
  for (const auto& e : truth_.entries()) {
    interfered |= e.interfered;
  }
  EXPECT_TRUE(interfered);
}

TEST_F(MacTest, ArfStepsDownOnFailures) {
  Mac& a = AddStation(1, {10, 10, 2});
  AddStation(2, {2000, 10, 2});  // unreachable
  a.SeedRate(MacAddress::Client(2), PhyRate::kG54);
  a.EnqueueData(MacAddress::Client(2), MacAddress::Ap(0), Bytes(100), false,
                true);
  events_.RunUntil(Seconds(2));
  // After a full retry burst the ladder must have moved down.
  EXPECT_LT(static_cast<int>(a.DataRateFor(MacAddress::Client(2))),
            static_cast<int>(PhyRate::kG54));
}

TEST_F(MacTest, RtsCtsHandshakePrecedesLargeData) {
  MacConfig cfg;
  cfg.rts_threshold = 500;
  auto a = std::make_unique<Mac>(events_, medium_, MacAddress::Client(1),
                                 Point3{10, 10, 2}, Channel::kCh1, Rng(101),
                                 cfg);
  Mac& b = AddStation(2, {15, 10, 2});
  bool delivered = false;
  a->set_tx_status_handler([&](std::uint64_t, bool ok) { delivered = ok; });
  a->EnqueueData(b.address(), MacAddress::Ap(0), Bytes(1000), false, true);
  events_.RunUntil(Seconds(1));

  EXPECT_TRUE(delivered);
  EXPECT_EQ(a->counters().rts_sent, 1u);
  EXPECT_EQ(b.counters().cts_replies_sent, 1u);
  // The on-air order must be RTS, CTS, DATA, ACK with SIFS gaps.
  ASSERT_EQ(truth_.size(), 4u);
  EXPECT_EQ(truth_.entries()[0].type, FrameType::kRts);
  EXPECT_EQ(truth_.entries()[1].type, FrameType::kCts);
  EXPECT_EQ(truth_.entries()[2].type, FrameType::kData);
  EXPECT_EQ(truth_.entries()[3].type, FrameType::kAck);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(truth_.entries()[i].start - truth_.entries()[i - 1].end, kSifs);
  }
}

TEST_F(MacTest, SmallFramesSkipRts) {
  MacConfig cfg;
  cfg.rts_threshold = 500;
  auto a = std::make_unique<Mac>(events_, medium_, MacAddress::Client(1),
                                 Point3{10, 10, 2}, Channel::kCh1, Rng(101),
                                 cfg);
  Mac& b = AddStation(2, {15, 10, 2});
  a->EnqueueData(b.address(), MacAddress::Ap(0), Bytes(100), false, true);
  events_.RunUntil(Seconds(1));
  EXPECT_EQ(a->counters().rts_sent, 0u);
  EXPECT_EQ(a->counters().msdu_delivered, 1u);
}

TEST_F(MacTest, CtsTimeoutRetriesReservation) {
  MacConfig cfg;
  cfg.rts_threshold = 100;
  auto a = std::make_unique<Mac>(events_, medium_, MacAddress::Client(1),
                                 Point3{10, 10, 2}, Channel::kCh1, Rng(101),
                                 cfg);
  AddStation(2, {2000, 10, 2});  // unreachable: no CTS ever
  bool delivered = true;
  a->set_tx_status_handler([&](std::uint64_t, bool ok) { delivered = ok; });
  a->EnqueueData(MacAddress::Client(2), MacAddress::Ap(0), Bytes(500), false,
                 true);
  events_.RunUntil(Seconds(3));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(a->counters().rts_sent,
            static_cast<std::uint64_t>(kShortRetryLimit) + 1);
  EXPECT_EQ(a->counters().msdu_failed, 1u);
}

TEST_F(MacTest, QueueCapDropsExcess) {
  Mac& a = AddStation(1, {10, 10, 2});
  AddStation(2, {15, 10, 2});
  MacConfig cfg;  // default max_queue = 128
  for (int i = 0; i < 400; ++i) {
    a.EnqueueData(MacAddress::Client(2), MacAddress::Ap(0), Bytes(10), false,
                  true);
  }
  EXPECT_GT(a.counters().queue_drops, 0u);
  EXPECT_LE(a.QueueDepth(), cfg.max_queue);
}

TEST_F(MacTest, NavDefersThirdParty) {
  // c overhears a's DATA to b (duration covers the ACK) and must not start
  // its own transmission inside the reservation.
  Mac& a = AddStation(1, {10, 10, 2});
  Mac& b = AddStation(2, {14, 10, 2});
  Mac& c = AddStation(3, {12, 12, 2});
  b.set_rx_handler([](const Frame&) {});
  a.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(1000), false, true);
  // c queues shortly after a starts.
  events_.ScheduleIn(300, [&] {
    c.EnqueueData(b.address(), MacAddress::Ap(0), Bytes(100), false, true);
  });
  events_.RunUntil(Seconds(1));
  // NAV + carrier sense guarantee c's DATA never overlaps a's DATA nor the
  // ACK interval a's duration field reserved.
  TrueMicros c_start = 0, c_end = 0;
  for (const auto& e : truth_.entries()) {
    if (e.type == FrameType::kData && e.transmitter == c.address()) {
      c_start = e.start;
      c_end = e.end;
    }
  }
  ASSERT_GT(c_start, 0);
  for (const auto& e : truth_.entries()) {
    if (e.transmitter == c.address()) continue;
    EXPECT_FALSE(e.start < c_end && c_start < e.end)
        << "c's DATA overlaps a " << FrameTypeName(e.type);
  }
}

}  // namespace
}  // namespace jig
