#include "jigsaw/tcp_reconstruct.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

constexpr Ipv4Addr kClient = MakeIpv4(10, 2, 0, 1);
constexpr Ipv4Addr kServer = MakeIpv4(10, 1, 0, 10);
constexpr std::uint16_t kClientPort = 10'000;
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint32_t kClientIss = 1000;
constexpr std::uint32_t kServerIss = 9000;

// Builds jframes + matching exchanges directly, scripting TCP conversations
// with controllable link-layer outcomes per segment.
class TcpScript {
 public:
  UniversalMicros now = 1'000'000;

  void Segment(bool downstream, std::uint32_t seq, std::uint32_t ack,
               std::uint8_t flags, std::uint16_t payload,
               ExchangeOutcome outcome = ExchangeOutcome::kDelivered) {
    TcpSegment seg;
    seg.src_port = downstream ? kServerPort : kClientPort;
    seg.dst_port = downstream ? kClientPort : kServerPort;
    seg.seq = seq;
    seg.ack = ack;
    seg.flags = flags;
    seg.payload_len = payload;
    const Ipv4Addr src = downstream ? kServer : kClient;
    const Ipv4Addr dst = downstream ? kClient : kServer;
    Frame f = MakeData(
        downstream ? MacAddress::Client(1) : MacAddress::Ap(0),
        downstream ? MacAddress::Ap(0) : MacAddress::Client(1),
        MacAddress::Ap(0), seq_counter_++, BuildTcpFrameBody(src, dst, seg),
        PhyRate::kB11, downstream, !downstream);

    JFrame jf;
    jf.timestamp = now;
    jf.rate = f.rate;
    const Bytes wire = f.Serialize();
    jf.wire_len = static_cast<std::uint32_t>(wire.size());
    jf.frame = std::move(f);
    FrameInstance inst;
    inst.outcome = RxOutcome::kOk;
    jf.instances.push_back(inst);

    FrameExchange ex;
    ex.transmitter = jf.frame.addr2;
    ex.receiver = jf.frame.addr1;
    ex.sequence = jf.frame.sequence;
    ex.start = now;
    ex.end = now + 500;
    ex.outcome = outcome;
    ex.data_jframe = static_cast<std::int64_t>(jframes.size());

    jframes.push_back(std::move(jf));
    link.exchanges.push_back(std::move(ex));
    now += 2'000;
  }

  void Handshake() {
    Segment(false, kClientIss, 0, kTcpSyn, 0);
    Segment(true, kServerIss, kClientIss + 1, kTcpSyn | kTcpAck, 0);
    Segment(false, kClientIss + 1, kServerIss + 1, kTcpAck, 0);
  }

  TransportReconstruction Run() {
    return ReconstructTransport(jframes, link);
  }

  std::vector<JFrame> jframes;
  LinkReconstruction link;
  std::uint16_t seq_counter_ = 1;
};

TEST(TcpReconstruct, HandshakeDetected) {
  TcpScript s;
  s.Handshake();
  const auto out = s.Run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_TRUE(out.flows[0].handshake_complete);
  EXPECT_EQ(out.flows[0].key.client_ip, kClient);
  EXPECT_EQ(out.flows[0].key.server_ip, kServer);
  EXPECT_GE(out.flows[0].wired_rtt_ms, 0.0);
  EXPECT_GE(out.flows[0].wireless_rtt_ms, 0.0);
}

TEST(TcpReconstruct, NoHandshakeFlaggedAsScanLike) {
  TcpScript s;
  s.Segment(false, kClientIss, 0, kTcpSyn, 0);  // SYN only
  const auto out = s.Run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_FALSE(out.flows[0].handshake_complete);
}

TEST(TcpReconstruct, BytesAndSegmentsCounted) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);
  s.Segment(true, base + 1000, kClientIss + 1, kTcpAck, 1000);
  s.Segment(false, kClientIss + 1, base + 2000, kTcpAck, 0);
  const auto out = s.Run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_EQ(out.flows[0].segments_down, 2u);
  EXPECT_EQ(out.flows[0].bytes_down, 2000u);
  EXPECT_EQ(out.flows[0].segments_up, 0u);  // pure ACKs carry no payload
}

TEST(TcpReconstruct, RetransmissionOfFailedExchangeIsWirelessLoss) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000,
            ExchangeOutcome::kNotDelivered);
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);  // retransmission
  const auto out = s.Run();
  ASSERT_EQ(out.flows.size(), 1u);
  ASSERT_EQ(out.flows[0].losses.size(), 1u);
  EXPECT_EQ(out.flows[0].losses[0].cause, LossCause::kWireless);
  EXPECT_EQ(out.stats.wireless_losses, 1u);
}

TEST(TcpReconstruct, RetransmissionAfterCoveringAckIsWiredLoss) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);
  // The client's covering ACK proves end-to-end wireless delivery.
  s.Segment(false, kClientIss + 1, base + 1000, kTcpAck, 0);
  // Spurious/wired-lossy retransmission.
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);
  const auto out = s.Run();
  ASSERT_EQ(out.flows[0].losses.size(), 1u);
  EXPECT_EQ(out.flows[0].losses[0].cause, LossCause::kWired);
}

TEST(TcpReconstruct, AmbiguousNoCoverIsWirelessLoss) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000,
            ExchangeOutcome::kAmbiguous);
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);
  const auto out = s.Run();
  ASSERT_EQ(out.flows[0].losses.size(), 1u);
  EXPECT_EQ(out.flows[0].losses[0].cause, LossCause::kWireless);
}

TEST(TcpReconstruct, CoveringAckResolvesAmbiguousExchange) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000,
            ExchangeOutcome::kAmbiguous);
  const std::size_t ambiguous_idx = s.link.exchanges.size() - 1;
  s.Segment(false, kClientIss + 1, base + 1000, kTcpAck, 0);
  const auto out = s.Run();
  ASSERT_TRUE(out.exchange_delivered[ambiguous_idx].has_value());
  EXPECT_TRUE(*out.exchange_delivered[ambiguous_idx]);
  EXPECT_EQ(out.stats.covering_ack_resolutions, 1u);
}

TEST(TcpReconstruct, HoleInferenceCountsMissingSegments) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kServerIss + 1;
  s.Segment(true, base, kClientIss + 1, kTcpAck, 1000);
  // Monitors miss [base+1000, base+2000); the next observed segment and the
  // client's ACK covering everything imply the gap was delivered unseen.
  s.Segment(true, base + 2000, kClientIss + 1, kTcpAck, 1000);
  s.Segment(false, kClientIss + 1, base + 3000, kTcpAck, 0);
  const auto out = s.Run();
  EXPECT_EQ(out.flows[0].inferred_missing_segments, 1u);
  EXPECT_EQ(out.stats.inferred_missing_segments, 1u);
}

TEST(TcpReconstruct, UpstreamFlowDirectionHandled) {
  TcpScript s;
  s.Handshake();
  const std::uint32_t base = kClientIss + 1;
  s.Segment(false, base, kServerIss + 1, kTcpAck, 500);
  s.Segment(false, base + 500, kServerIss + 1, kTcpAck, 500);
  s.Segment(true, kServerIss + 1, base + 1000, kTcpAck, 0);
  const auto out = s.Run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_EQ(out.flows[0].segments_up, 2u);
  EXPECT_EQ(out.flows[0].bytes_up, 1000u);
}

TEST(TcpReconstruct, MultipleFlowsSeparated) {
  TcpScript s;
  s.Handshake();
  // A second flow: same hosts, different client port.
  TcpSegment syn;
  syn.src_port = kClientPort + 1;
  syn.dst_port = kServerPort;
  syn.seq = 50;
  syn.flags = kTcpSyn;
  Frame f = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                     MacAddress::Ap(0), 99,
                     BuildTcpFrameBody(kClient, kServer, syn), PhyRate::kB11,
                     false, true);
  JFrame jf;
  jf.timestamp = s.now;
  jf.rate = f.rate;
  jf.wire_len = 100;
  jf.frame = std::move(f);
  jf.instances.push_back(FrameInstance{});
  FrameExchange ex;
  ex.transmitter = jf.frame.addr2;
  ex.receiver = jf.frame.addr1;
  ex.data_jframe = static_cast<std::int64_t>(s.jframes.size());
  ex.start = s.now;
  s.jframes.push_back(std::move(jf));
  s.link.exchanges.push_back(std::move(ex));

  const auto out = s.Run();
  EXPECT_EQ(out.flows.size(), 2u);
  EXPECT_EQ(out.stats.flows_with_handshake, 1u);
}

TEST(TcpReconstruct, LossRateArithmetic) {
  TcpFlowRecord flow;
  flow.segments_down = 8;
  flow.segments_up = 2;
  flow.losses.push_back({0, true, 0, LossCause::kWireless});
  flow.losses.push_back({0, true, 0, LossCause::kWired});
  EXPECT_EQ(flow.DataSegments(), 10u);
  EXPECT_DOUBLE_EQ(flow.LossRate(), 0.2);
  EXPECT_EQ(flow.LossesBy(LossCause::kWireless), 1u);
  EXPECT_EQ(flow.LossesBy(LossCause::kWired), 1u);
  EXPECT_EQ(flow.LossesBy(LossCause::kUnknown), 0u);
}

}  // namespace
}  // namespace jig
