// End-to-end integration: simulator → trace files → merge → link →
// transport → analyses, with invariants checked against ground truth.
#include <gtest/gtest.h>

#include <filesystem>

#include "jigsaw/analysis/coverage.h"
#include "jigsaw/analysis/dispersion.h"
#include "jigsaw/analysis/summary.h"
#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/tcp_reconstruct.h"
#include "sim/scenario.h"

namespace jig {
namespace {

ScenarioConfig SmallBuilding() {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.duration = Seconds(12);
  cfg.clients = 24;
  cfg.workload.web_per_min = 3.0;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(SmallBuilding());
    scenario_->Run();
    traces_ = new TraceSet(scenario_->TakeTraces());
    merge_ = new MergeResult(MergeTraces(*traces_));
    link_ = new LinkReconstruction(ReconstructLink(merge_->jframes));
    transport_ = new TransportReconstruction(
        ReconstructTransport(merge_->jframes, *link_));
  }
  static void TearDownTestSuite() {
    delete transport_;
    delete link_;
    delete merge_;
    delete traces_;
    delete scenario_;
    transport_ = nullptr;
    link_ = nullptr;
    merge_ = nullptr;
    traces_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static TraceSet* traces_;
  static MergeResult* merge_;
  static LinkReconstruction* link_;
  static TransportReconstruction* transport_;
};

Scenario* IntegrationTest::scenario_ = nullptr;
TraceSet* IntegrationTest::traces_ = nullptr;
MergeResult* IntegrationTest::merge_ = nullptr;
LinkReconstruction* IntegrationTest::link_ = nullptr;
TransportReconstruction* IntegrationTest::transport_ = nullptr;

TEST_F(IntegrationTest, AllRadiosSync) {
  EXPECT_TRUE(merge_->bootstrap.AllSynced());
  EXPECT_EQ(merge_->bootstrap.synced.size(), 156u);
}

TEST_F(IntegrationTest, JframeCountTracksTruth) {
  // Nearly every true transmission should surface as exactly one jframe.
  const double ratio = static_cast<double>(merge_->stats.jframes) /
                       static_cast<double>(scenario_->truth().size());
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.02);
}

TEST_F(IntegrationTest, DispersionMatchesPaperShape) {
  const auto d = DispersionDistribution(merge_->jframes);
  ASSERT_GT(d.size(), 100u);
  // Paper Figure 4: 90% under 10 us, 99% under 20 us.
  EXPECT_LE(d.Quantile(0.90), 12.0);
  EXPECT_LE(d.Quantile(0.99), 25.0);
}

TEST_F(IntegrationTest, JframesStrictlyOrdered) {
  for (std::size_t i = 1; i < merge_->jframes.size(); ++i) {
    ASSERT_LE(merge_->jframes[i - 1].timestamp, merge_->jframes[i].timestamp);
  }
}

TEST_F(IntegrationTest, StatsInternallyConsistent) {
  const auto& st = merge_->stats;
  EXPECT_EQ(st.events_in, st.valid_in + st.fcs_error_in + st.phy_error_in);
  EXPECT_LE(st.events_unified, st.valid_in + st.fcs_error_in);
  EXPECT_GE(st.jframes, 1u);
  EXPECT_GE(st.EventsPerJframe(), 1.0);
}

TEST_F(IntegrationTest, EveryJframeHasValidRepresentative) {
  for (const auto& jf : merge_->jframes) {
    EXPECT_GE(jf.ValidInstanceCount(), 1u);
    EXPECT_GT(jf.wire_len, 0u);
  }
}

TEST_F(IntegrationTest, WiredCoverageHigh) {
  const auto report =
      ComputeWiredCoverage(scenario_->wired_records(), merge_->jframes);
  ASSERT_GT(report.wired_packets, 50u);
  EXPECT_GT(report.Overall(), 0.85);           // paper: 97%
  EXPECT_GT(report.GroupCoverage(true), 0.9);  // AP frames are easy to hear
}

TEST_F(IntegrationTest, TruthOracleCoverage) {
  const auto oracle = ComputeTruthCoverage(scenario_->truth(), std::nullopt);
  ASSERT_GT(oracle.events, 500u);
  EXPECT_GT(oracle.Rate(), 0.7);  // paper's laptop experiment: 95%
  EXPECT_GE(oracle.heard_any, oracle.heard_ok);
}

TEST_F(IntegrationTest, ExchangesReferenceValidAttempts) {
  for (const auto& ex : link_->exchanges) {
    EXPECT_FALSE(ex.attempts.empty());
    for (std::size_t idx : ex.attempts) {
      ASSERT_LT(idx, link_->attempts.size());
      const auto& a = link_->attempts[idx];
      if (a.has_sequence) {
        EXPECT_EQ(a.transmitter, ex.transmitter);
      }
    }
  }
}

TEST_F(IntegrationTest, InferenceRatesSmall) {
  // Paper Section 5.1: 0.58% of attempts, 0.14% of exchanges.  Ours must be
  // the same order of magnitude — small but nonzero in a lossy building.
  EXPECT_LT(link_->stats.AttemptInferenceRate(), 0.05);
  EXPECT_LT(link_->stats.ExchangeInferenceRate(), 0.05);
}

TEST_F(IntegrationTest, TcpFlowsReconstructed) {
  EXPECT_GT(transport_->stats.flows_total, 5u);
  EXPECT_GT(transport_->stats.flows_with_handshake, 3u);
  EXPECT_GT(transport_->stats.tcp_segments, 100u);
  for (const auto& flow : transport_->flows) {
    EXPECT_LE(flow.losses.size(), flow.DataSegments());
    if (flow.handshake_complete) {
      EXPECT_GE(flow.wired_rtt_ms, 0.0);
    }
  }
}

TEST_F(IntegrationTest, SummaryFieldsPopulated) {
  const auto summary =
      Summarize(*merge_, *link_, *transport_, traces_->size());
  EXPECT_EQ(summary.radios, 156u);
  EXPECT_GT(summary.total_events, 10'000u);
  EXPECT_GT(summary.error_event_fraction, 0.05);
  EXPECT_LT(summary.error_event_fraction, 0.8);
  EXPECT_GT(summary.clients_observed, 10u);
  EXPECT_GT(summary.aps_observed, 10u);
  EXPECT_GT(summary.data_frames, 0u);
  EXPECT_GT(summary.ctrl_frames, 0u);
}

TEST_F(IntegrationTest, TraceFileRoundtripPreservesMerge) {
  // Write the traces as jigdump-style files, reload, merge again: identical
  // jframe count and dispersion stats.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "jigsaw_integration_traces";
  fs::remove_all(dir);
  traces_->WriteDirectory(dir);
  TraceSet reloaded = TraceSet::OpenDirectory(dir);
  ASSERT_EQ(reloaded.size(), traces_->size());
  const auto remerged = MergeTraces(reloaded);
  EXPECT_EQ(remerged.stats.jframes, merge_->stats.jframes);
  EXPECT_EQ(remerged.stats.events_in, merge_->stats.events_in);
  fs::remove_all(dir);
}

TEST_F(IntegrationTest, MergeDeterministic) {
  // Re-running the same scenario yields byte-identical statistics.
  Scenario again(SmallBuilding());
  again.Run();
  auto traces = again.TakeTraces();
  const auto merged = MergeTraces(traces);
  EXPECT_EQ(merged.stats.jframes, merge_->stats.jframes);
  EXPECT_EQ(merged.stats.events_in, merge_->stats.events_in);
  EXPECT_EQ(merged.stats.resyncs, merge_->stats.resyncs);
}

}  // namespace
}  // namespace jig
