// Metrics-registry semantics: counter/gauge/histogram behavior, bucket
// edges, the global enable switch, concurrent sharded increments (run
// under TSan in CI), and the two exposition formats.
//
// The tests create uniquely-named metrics (the registry is process-global
// and never unregisters) and reset shared ones before use.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "jigsaw/pipeline.h"
#include "obs/export.h"
#include "obs/stage_timer.h"
#include "synthetic.h"

namespace jig::obs {
namespace {

MetricRegistry& Reg() { return MetricRegistry::Global(); }

TEST(CounterTest, AddAccumulatesAndResets) {
  Counter& c = Reg().GetCounter("test_counter_basic");
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, RegistryReturnsSameInstanceForSameName) {
  Counter& a = Reg().GetCounter("test_counter_identity");
  Counter& b = Reg().GetCounter("test_counter_identity");
  EXPECT_EQ(&a, &b);
  // Distinct labels are distinct series of the same name.
  Counter& l1 = Reg().GetCounter("test_counter_labeled", "", "k=\"1\"");
  Counter& l2 = Reg().GetCounter("test_counter_labeled", "", "k=\"2\"");
  EXPECT_NE(&l1, &l2);
}

TEST(CounterTest, KindMismatchThrows) {
  Reg().GetCounter("test_kind_mismatch");
  EXPECT_THROW(Reg().GetGauge("test_kind_mismatch"), std::logic_error);
  EXPECT_THROW(Reg().GetHistogram("test_kind_mismatch", {1, 2}),
               std::logic_error);
}

TEST(GaugeTest, SetAddUpdateMax) {
  Gauge& g = Reg().GetGauge("test_gauge_basic");
  g.Reset();
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.UpdateMax(5);  // below current: no-op
  EXPECT_EQ(g.Value(), 7);
  g.UpdateMax(100);
  EXPECT_EQ(g.Value(), 100);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram& h = Reg().GetHistogram("test_hist_edges", {10, 100, 1000});
  h.Reset();
  h.Observe(0);     // <= 10
  h.Observe(10);    // == edge: belongs to the le=10 bucket
  h.Observe(11);    // first value past the edge
  h.Observe(100);   // == second edge
  h.Observe(1001);  // past every bound: +Inf overflow bucket
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 0 + 10 + 11 + 100 + 1001);
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10, 5}), std::logic_error);
  EXPECT_THROW(Histogram({10, 10}), std::logic_error);
}

TEST(HistogramTest, ReRegistrationWithDifferentBoundsThrows) {
  Reg().GetHistogram("test_hist_rebound", {1, 2, 3});
  EXPECT_NO_THROW(Reg().GetHistogram("test_hist_rebound", {1, 2, 3}));
  EXPECT_THROW(Reg().GetHistogram("test_hist_rebound", {1, 2}),
               std::logic_error);
}

TEST(EnabledTest, DisabledMetricsDropWrites) {
  Counter& c = Reg().GetCounter("test_enabled_counter");
  Gauge& g = Reg().GetGauge("test_enabled_gauge");
  Histogram& h = Reg().GetHistogram("test_enabled_hist", {10});
  c.Reset();
  g.Reset();
  h.Reset();
  SetEnabled(false);
  c.Add(5);
  g.Set(5);
  h.Observe(5);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

// The hot-path contract: concurrent relaxed increments from many threads
// lose nothing.  Run under TSan in CI to prove the sharded cells are
// data-race-free.
TEST(ConcurrencyTest, ShardedIncrementsAreExact) {
  Counter& c = Reg().GetCounter("test_concurrent_counter");
  Histogram& h = Reg().GetHistogram("test_concurrent_hist", {100, 10'000});
  Gauge& peak = Reg().GetGauge("test_concurrent_peak");
  c.Reset();
  h.Reset();
  peak.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Observe(i % 200);
        peak.UpdateMax(t * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], h.Count());
  EXPECT_EQ(peak.Value(), (kThreads - 1) * kPerThread + kPerThread - 1);
}

TEST(ConcurrencyTest, CollectIsSafeConcurrentWithWrites) {
  Counter& c = Reg().GetCounter("test_concurrent_collect");
  c.Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.Add(1);
  });
  for (int i = 0; i < 100; ++i) {
    const MetricsSnapshot snap = Reg().Collect();
    const MetricSample* s = snap.Find("test_concurrent_collect");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->value, 0);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(StageTimerTest, ObservesOnceIntoHistogram) {
  Histogram& h =
      Reg().GetHistogram("test_stage_timer", LatencyBucketsUs());
  h.Reset();
  {
    StageTimer timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
  {
    StageTimer timer(h);
    timer.Record();
    timer.Record();  // idempotent: still one observation
  }
  EXPECT_EQ(h.Count(), 2u);
  SetEnabled(false);
  {
    StageTimer timer(h);
  }
  SetEnabled(true);
  EXPECT_EQ(h.Count(), 2u);
}

TEST(SnapshotTest, ValueHelperReadsAllKinds) {
  Reg().GetCounter("test_snap_counter").Reset();
  Reg().GetCounter("test_snap_counter").Add(7);
  Reg().GetGauge("test_snap_gauge").Set(-3);
  Histogram& h = Reg().GetHistogram("test_snap_hist", {5});
  h.Reset();
  h.Observe(1);
  h.Observe(9);
  const MetricsSnapshot snap = Reg().Collect();
  EXPECT_EQ(snap.Value("test_snap_counter"), 7);
  EXPECT_EQ(snap.Value("test_snap_gauge"), -3);
  EXPECT_EQ(snap.Value("test_snap_hist"), 2);  // histogram -> count
  EXPECT_EQ(snap.Value("test_snap_absent"), 0);
  EXPECT_EQ(snap.Find("test_snap_absent"), nullptr);
}

TEST(ExpositionTest, PrometheusTextFormat) {
  Reg().GetCounter("test_prom_counter", "a counter").Reset();
  Reg().GetCounter("test_prom_counter", "a counter").Add(3);
  Histogram& h = Reg().GetHistogram("test_prom_hist", {10, 20}, "a hist");
  h.Reset();
  h.Observe(5);
  h.Observe(15);
  h.Observe(99);
  const std::string text = ToPrometheusText(Reg().Collect());
  EXPECT_NE(text.find("# HELP test_prom_counter a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3\n"), std::string::npos);
  // Histogram buckets are cumulative in the text format.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum 119"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 3"), std::string::npos);
}

TEST(ExpositionTest, JsonMirrorsSnapshotNonCumulatively) {
  Reg().GetCounter("test_json_counter").Reset();
  Reg().GetCounter("test_json_counter").Add(11);
  Histogram& h = Reg().GetHistogram("test_json_hist", {10, 20});
  h.Reset();
  h.Observe(5);
  h.Observe(15);
  h.Observe(99);
  const std::string json = ToJson(Reg().Collect());
  EXPECT_NE(json.find("\"test_json_counter\": 11"), std::string::npos);
  // Non-cumulative per-bucket counts (1 per bucket here), bounds listed.
  EXPECT_NE(json.find("\"bounds\": [10, 20]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 1, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 119"), std::string::npos);
}

TEST(ExpositionTest, LabeledSeriesShareOneTypeHeader) {
  Reg().GetCounter("test_prom_labeled", "help", "consumer=\"a\"").Reset();
  Reg().GetCounter("test_prom_labeled", "help", "consumer=\"b\"").Reset();
  Reg().GetCounter("test_prom_labeled", "help", "consumer=\"a\"").Add(1);
  Reg().GetCounter("test_prom_labeled", "help", "consumer=\"b\"").Add(2);
  const std::string text = ToPrometheusText(Reg().Collect());
  EXPECT_NE(text.find("test_prom_labeled{consumer=\"a\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_labeled{consumer=\"b\"} 2"),
            std::string::npos);
  // Exactly one TYPE line for the metric name.
  const std::string type_line = "# TYPE test_prom_labeled counter";
  const auto first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

// The lag-accounting regression pins.  Pre-fix, Emit() observed the raw
// `capture_frontier - jf.timestamp` into jig_merge_emit_lag_us and
// live_lag_us() returned the raw frontier difference — both could go
// negative when an emission outran the captured frontier.

// The clamp itself (the pre-fix code had no such seam: both sites did a
// raw subtraction, which this pins against).
TEST(LagAccountingTest, ClampedLagNeverNegative) {
  EXPECT_EQ(jig::ClampedLagUs(250, 100), 150);
  EXPECT_EQ(jig::ClampedLagUs(100, 100), 0);
  // An emission ahead of the captured frontier is zero lag, not negative.
  EXPECT_EQ(jig::ClampedLagUs(100, 250), 0);
  EXPECT_EQ(jig::ClampedLagUs(-500, -100), 0);
  EXPECT_EQ(jig::ClampedLagUs(-100, -500), 400);
}

// End-to-end: across a full merge the emit frontier advances
// monotonically, live_lag_us() never reports below zero, and at kDone the
// output has caught up with capture exactly (lag == 0).  The lag
// histogram must likewise hold only non-negative samples.
TEST(LagAccountingTest, SessionLagIsNonNegativeAndZeroAtDone) {
  Histogram& lag_hist = Reg().GetHistogram(
      "jig_merge_emit_lag_us", LatencyBucketsUs(), "Emit lag (us)");
  lag_hist.Reset();

  auto net = jig::testing::MultiChannelNetwork(77);
  auto traces = net.Build();
  jig::MergeConfig config;
  config.threads = 2;
  std::int64_t prev_emit_ts = std::numeric_limits<std::int64_t>::min();
  std::uint64_t emitted = 0;
  jig::MergeSession session(traces, config, [&](jig::JFrame&& jf) {
    EXPECT_GE(jf.timestamp, prev_emit_ts) << "emit frontier went backwards";
    prev_emit_ts = jf.timestamp;
    ++emitted;
  });
  jig::MergeSession::Status status;
  do {
    status = session.Poll();
    EXPECT_GE(session.live_lag_us(), 0)
        << "live lag reported negative mid-session";
  } while (status != jig::MergeSession::Status::kDone);
  ASSERT_GT(emitted, 0u);
  EXPECT_EQ(session.live_lag_us(), 0)
      << "output did not catch up with capture at kDone";

  // Histogram samples were clamped: with the bounded sum identity,
  // Sum() >= 0 and every recorded sample landed in a finite-or-overflow
  // bucket (negative raw samples would drag Sum() below zero long before
  // the bucket counts noticed).
  EXPECT_EQ(lag_hist.Count(), emitted);
  EXPECT_GE(lag_hist.Sum(), 0);
}

}  // namespace
}  // namespace jig::obs
