#include "util/byte_io.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

TEST(ByteIo, FixedWidthRoundtrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);

  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteIo, LittleEndianLayout) {
  Bytes buf;
  ByteWriter w(buf);
  w.U32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(ByteIo, RawBytes) {
  Bytes buf;
  ByteWriter w(buf);
  const Bytes payload = {1, 2, 3, 4, 5};
  w.Raw(payload);
  ByteReader r(buf);
  auto got = r.Raw(5);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

TEST(ByteIo, TruncatedReadThrows) {
  Bytes buf = {1, 2, 3};
  ByteReader r(buf);
  r.U16();
  EXPECT_THROW(r.U16(), std::runtime_error);
  ByteReader r2(buf);
  EXPECT_THROW(r2.Raw(4), std::runtime_error);
}

class VarintTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintTest, Roundtrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.Varint(GetParam());
  ByteReader r(buf);
  EXPECT_EQ(r.Varint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintTest,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull));

class SVarintTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SVarintTest, Roundtrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.SVarint(GetParam());
  ByteReader r(buf);
  EXPECT_EQ(r.SVarint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SVarintTest,
    ::testing::Values(0, 1, -1, 63, 64, -64, -65, 1'000'000, -1'000'000,
                      std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(ByteIo, SmallSVarintsAreCompact) {
  // Zig-zag: timestamps deltas of a few us must encode in one byte.
  for (std::int64_t v : {0, 1, -1, 40, -40, 63, -64}) {
    Bytes buf;
    ByteWriter w(buf);
    w.SVarint(v);
    EXPECT_EQ(buf.size(), 1u) << v;
  }
}

TEST(ByteIo, VarintOverflowRejected) {
  Bytes buf(11, 0xFF);  // continuation bits forever
  ByteReader r(buf);
  EXPECT_THROW(r.Varint(), std::runtime_error);
}

TEST(ByteIo, PositionTracking) {
  Bytes buf;
  ByteWriter w(buf);
  w.U32(7);
  w.U32(8);
  ByteReader r(buf);
  EXPECT_EQ(r.position(), 0u);
  r.U32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace jig
