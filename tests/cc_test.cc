// Unit tests for the pluggable congestion-control subsystem (sim/cc/):
// Reno parity against the pre-refactor inlined logic, CUBIC's window curve
// and fast convergence, BBR's startup exit and probe-bw gain cycle, and
// end-to-end transfers through TcpPeer under each algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>

#include "sim/cc/bbr.h"
#include "sim/cc/congestion_control.h"
#include "sim/cc/cubic.h"
#include "sim/cc/reno.h"
#include "sim/event_queue.h"
#include "sim/tcp.h"

namespace jig {
namespace {

constexpr std::uint32_t kMss = 1460;

CcConfig DefaultCcConfig() {
  return CcConfig{kMss, 2.0, 64.0, 32.0};
}

// ---------------------------------------------------------------- Reno ---

// The congestion response that was inlined in TcpPeer before the cc/
// subsystem existed, copied verbatim (see the pre-refactor sim/tcp.cc):
// the parity test drives this model and RenoCc through an identical event
// script and requires bit-identical cwnd at every step.
struct PreRefactorReno {
  double cwnd = 2.0;
  double ssthresh = 32.0;
  double max_cwnd = 64.0;

  void OnAckAdvance(bool in_recovery) {
    if (!in_recovery) {
      if (cwnd < ssthresh) {
        cwnd += 1.0;
      } else {
        cwnd += 1.0 / cwnd;
      }
      cwnd = std::min(cwnd, max_cwnd);
    }
  }
  void EnterFastRetransmit(std::uint64_t inflight_bytes) {
    const double inflight_segs = static_cast<double>(inflight_bytes) / kMss;
    ssthresh = std::max(inflight_segs / 2.0, 2.0);
    cwnd = ssthresh;
  }
  void OnRto(std::uint64_t inflight_bytes) {
    const double inflight_segs = static_cast<double>(inflight_bytes) / kMss;
    ssthresh = std::max(inflight_segs / 2.0, 2.0);
    cwnd = 1.0;
  }
};

TEST(RenoParity, MatchesPreRefactorTrajectoryOnScriptedLosses) {
  RenoCc cc(DefaultCcConfig());
  PreRefactorReno ref;

  // Scripted loss pattern: slow start, a triple-dupack loss mid-stream,
  // frozen growth during recovery, recovery exit, congestion avoidance,
  // an RTO, then recovery from cwnd = 1.  Inflight tracks cwnd.
  TrueMicros now = 0;
  const auto ack = [&](bool in_recovery) {
    now += 10'000;
    const auto inflight = static_cast<std::uint64_t>(ref.cwnd * kMss);
    cc.OnAck(CcAck{kMss, inflight, in_recovery, now});
    ref.OnAckAdvance(in_recovery);
    ASSERT_DOUBLE_EQ(cc.CwndSegments(), ref.cwnd);
    ASSERT_DOUBLE_EQ(cc.SsthreshSegments(), ref.ssthresh);
  };
  const auto loss = [&] {
    const auto inflight = static_cast<std::uint64_t>(ref.cwnd * kMss);
    for (int d = 1; d <= 3; ++d) cc.OnDupAck(d, inflight, false);
    ref.EnterFastRetransmit(inflight);
    ASSERT_DOUBLE_EQ(cc.CwndSegments(), ref.cwnd);
    ASSERT_DOUBLE_EQ(cc.SsthreshSegments(), ref.ssthresh);
  };

  for (int i = 0; i < 40; ++i) ack(false);  // slow start into avoidance
  loss();
  for (int i = 0; i < 5; ++i) ack(true);    // recovery: growth frozen
  for (int i = 0; i < 30; ++i) ack(false);  // avoidance resumes
  loss();
  for (int i = 0; i < 10; ++i) ack(false);
  // RTO with everything in flight.
  const auto inflight = static_cast<std::uint64_t>(ref.cwnd * kMss);
  cc.OnRtoTimeout(inflight);
  ref.OnRto(inflight);
  ASSERT_DOUBLE_EQ(cc.CwndSegments(), ref.cwnd);
  ASSERT_DOUBLE_EQ(cc.SsthreshSegments(), ref.ssthresh);
  for (int i = 0; i < 50; ++i) ack(false);  // climb back out
}

TEST(RenoParity, DupAcksBelowThreeDoNotReduce) {
  RenoCc cc(DefaultCcConfig());
  const double before = cc.CwndSegments();
  cc.OnDupAck(1, 10 * kMss, false);
  cc.OnDupAck(2, 10 * kMss, false);
  EXPECT_DOUBLE_EQ(cc.CwndSegments(), before);
  cc.OnDupAck(3, 10 * kMss, true);  // inside recovery: no second reduction
  EXPECT_DOUBLE_EQ(cc.CwndSegments(), before);
}

TEST(RenoParity, SsthreshFlooredAtTwoSegmentsAfterRepeatedLosses) {
  // RFC 5681 §3.1: repeated timeouts with almost nothing in flight must
  // not collapse ssthresh below 2 segments.
  RenoCc cc(DefaultCcConfig());
  for (int i = 0; i < 10; ++i) cc.OnRtoTimeout(kMss / 2);
  EXPECT_GE(cc.SsthreshSegments(), 2.0);
  for (int d = 1; d <= 3; ++d) cc.OnDupAck(d, kMss / 2, false);
  EXPECT_GE(cc.SsthreshSegments(), 2.0);
  EXPECT_GE(cc.CwndSegments(), 2.0);
}

// --------------------------------------------------------------- CUBIC ---

// Drives a CubicCc to steady congestion avoidance, then through a loss.
struct CubicDriver {
  CubicCc cc{DefaultCcConfig()};
  TrueMicros now = 0;
  Micros rtt = Milliseconds(50);

  void Ack() {
    now += rtt / 10;  // ten ACKs per RTT
    cc.OnRttSample(rtt, now);
    cc.OnAck(CcAck{kMss, static_cast<std::uint64_t>(cc.CwndBytes()), false,
                   now});
  }
  void Loss() {
    for (int d = 1; d <= 3; ++d) {
      cc.OnDupAck(d, static_cast<std::uint64_t>(cc.CwndBytes()), false);
    }
  }
};

TEST(Cubic, ReductionUsesBeta) {
  CubicDriver d;
  while (d.cc.CwndSegments() < 30.0) d.Ack();
  const double before = d.cc.CwndSegments();
  d.Loss();
  EXPECT_NEAR(d.cc.CwndSegments(), 0.7 * before, 1e-9);
  EXPECT_NEAR(d.cc.w_max_segments(), before, 1e-9);
}

TEST(Cubic, WindowFollowsCubicCurveAfterLoss) {
  CubicDriver d;
  while (d.cc.CwndSegments() < 40.0) d.Ack();
  d.Loss();
  const double w_max = d.cc.w_max_segments();

  // Concave phase: growth approaches W_max from below and decelerates.
  double prev = d.cc.CwndSegments();
  double first_step = -1.0;
  while (d.cc.CwndSegments() < w_max - 1.0) {
    d.Ack();
    if (first_step < 0) first_step = d.cc.CwndSegments() - prev;
    prev = d.cc.CwndSegments();
  }
  // K = cbrt(W_max*(1-beta)/C): with beta 0.7 and C 0.4 the plateau sits
  // ~3s out for w_max ~40; the curve must pass W_max and turn convex.
  const double k_s = d.cc.k_seconds();
  EXPECT_GT(k_s, 1.0);
  const TrueMicros plateau_end =
      d.now + static_cast<TrueMicros>(2.0 * k_s * 1e6);
  while (d.now < plateau_end &&
         d.cc.CwndSegments() < DefaultCcConfig().max_cwnd_segments) {
    d.Ack();
  }
  EXPECT_GT(d.cc.CwndSegments(), w_max);  // convex region reached
}

TEST(Cubic, FastConvergenceReleasesCapacityOnShrinkingPath) {
  CubicDriver d;
  while (d.cc.CwndSegments() < 40.0) d.Ack();
  d.Loss();  // first loss: W_max = cwnd at loss
  const double w_max_1 = d.cc.w_max_segments();

  // Second loss before regaining the old peak: fast convergence remembers
  // the smaller peak and anchors the curve below it.
  for (int i = 0; i < 20; ++i) d.Ack();
  const double at_second_loss = d.cc.CwndSegments();
  ASSERT_LT(at_second_loss, w_max_1);
  d.Loss();
  EXPECT_NEAR(d.cc.w_max_segments(), at_second_loss * (1.0 + 0.7) / 2.0,
              1e-9);
  EXPECT_LT(d.cc.w_max_segments(), at_second_loss);
}

TEST(Cubic, SsthreshFlooredAtTwoSegments) {
  CubicCc cc(DefaultCcConfig());
  for (int i = 0; i < 10; ++i) cc.OnRtoTimeout(kMss / 2);
  EXPECT_GE(cc.SsthreshSegments(), 2.0);
}

// ----------------------------------------------------------------- BBR ---

// Feeds a BbrCc acknowledgements consistent with a fixed-bandwidth,
// fixed-RTT pipe: `bw_Bps` bytes/sec delivered in ACK clumps every
// rtt/10, inflight pinned at one BDP.
struct BbrDriver {
  BbrCc cc{DefaultCcConfig()};
  TrueMicros now = 0;
  Micros rtt = Milliseconds(20);
  double bw_Bps = 2e6;

  void Ack() {
    now += rtt / 10;
    const auto acked =
        static_cast<std::uint64_t>(bw_Bps * (rtt / 10) / 1e6);
    const auto inflight =
        static_cast<std::uint64_t>(bw_Bps * rtt / 1e6);  // one BDP
    cc.OnRttSample(rtt, now);
    cc.OnAck(CcAck{acked, inflight, false, now});
  }
  void RunRounds(int rounds) {
    for (int i = 0; i < rounds * 10; ++i) Ack();
  }
};

TEST(Bbr, StartupExitsWhenBandwidthPlateaus) {
  BbrDriver d;
  ASSERT_EQ(d.cc.state(), BbrCc::State::kStartup);
  // A constant-rate pipe: the bandwidth filter stops growing immediately,
  // so startup must end after the three-round plateau (plus filter warmup).
  d.RunRounds(10);
  EXPECT_NE(d.cc.state(), BbrCc::State::kStartup);
  EXPECT_NEAR(d.cc.bottleneck_bw_Bps(), d.bw_Bps, 0.3 * d.bw_Bps);
  EXPECT_EQ(d.cc.min_rtt(), d.rtt);
}

TEST(Bbr, ReachesProbeBwAndCyclesGains) {
  BbrDriver d;
  d.RunRounds(12);
  ASSERT_EQ(d.cc.state(), BbrCc::State::kProbeBw);

  // The gain cycle advances one phase per min-RTT and wraps modulo 8;
  // phase 0 paces at 1.25x, phase 1 drains at 0.75x.
  double probe_rate = 0.0, drain_rate = 0.0, cruise_rate = 0.0;
  int advances = 0;
  int last_index = d.cc.probe_bw_cycle_index();
  for (int i = 0; i < 200 && advances < 10; ++i) {
    d.Ack();
    if (d.cc.state() != BbrCc::State::kProbeBw) break;
    if (d.cc.probe_bw_cycle_index() != last_index) {
      ++advances;
      last_index = d.cc.probe_bw_cycle_index();
    }
    if (d.cc.probe_bw_cycle_index() == 0) probe_rate = d.cc.PacingRateBps();
    if (d.cc.probe_bw_cycle_index() == 1) drain_rate = d.cc.PacingRateBps();
    if (d.cc.probe_bw_cycle_index() == 2) cruise_rate = d.cc.PacingRateBps();
  }
  EXPECT_GE(advances, 8);  // full trip around the cycle
  ASSERT_GT(drain_rate, 0.0);
  EXPECT_NEAR(probe_rate / drain_rate, 1.25 / 0.75, 0.01);
  EXPECT_NEAR(probe_rate / cruise_rate, 1.25, 0.01);
}

TEST(Bbr, CwndTracksBdpWithGain) {
  BbrDriver d;
  d.RunRounds(12);
  ASSERT_EQ(d.cc.state(), BbrCc::State::kProbeBw);
  const double bdp = d.cc.bottleneck_bw_Bps() * (d.rtt / 1e6);
  EXPECT_NEAR(d.cc.CwndBytes(), 2.0 * bdp, 0.25 * bdp);
}

TEST(Bbr, RtoCollapsesToOneSegmentThenModelRestores) {
  BbrDriver d;
  d.RunRounds(12);
  const double before = d.cc.CwndBytes();
  d.cc.OnRtoTimeout(0);
  EXPECT_DOUBLE_EQ(d.cc.CwndBytes(), kMss);
  d.Ack();
  EXPECT_GT(d.cc.CwndBytes(), kMss);
  EXPECT_NEAR(d.cc.CwndBytes(), before, 0.5 * before);
}

TEST(Bbr, ProbeRttFiresWhenRttStaysAboveTheFloor) {
  BbrDriver d;
  d.RunRounds(12);
  ASSERT_EQ(d.cc.state(), BbrCc::State::kProbeBw);
  const Micros floor_rtt = d.rtt;

  // A standing queue inflates every sample above the recorded floor, so
  // the min-RTT filter goes stale; after the 10 s window BBR must drain
  // to the 4-segment PROBE_RTT window, re-measure, and resume PROBE_BW
  // with the refreshed (inflated) floor.
  d.rtt = Milliseconds(30);
  bool saw_probe_rtt = false;
  bool saw_small_cwnd = false;
  for (int i = 0; i < 12'000 && d.cc.state() != BbrCc::State::kProbeRtt;
       ++i) {
    d.Ack();
  }
  if (d.cc.state() == BbrCc::State::kProbeRtt) {
    saw_probe_rtt = true;
    saw_small_cwnd = d.cc.CwndBytes() == 4.0 * kMss;
    for (int i = 0; i < 200 && d.cc.state() == BbrCc::State::kProbeRtt; ++i) {
      d.Ack();
    }
  }
  EXPECT_TRUE(saw_probe_rtt);
  EXPECT_TRUE(saw_small_cwnd);
  EXPECT_EQ(d.cc.state(), BbrCc::State::kProbeBw);
  EXPECT_EQ(d.cc.min_rtt(), d.rtt);  // refreshed during the probe
  EXPECT_GT(d.cc.min_rtt(), floor_rtt);
}

TEST(Bbr, LossesDoNotShrinkTheModel) {
  BbrDriver d;
  d.RunRounds(12);
  const double before = d.cc.CwndBytes();
  for (int dup = 1; dup <= 5; ++dup) {
    d.cc.OnDupAck(dup, static_cast<std::uint64_t>(before), dup > 3);
  }
  EXPECT_DOUBLE_EQ(d.cc.CwndBytes(), before);
}

// ----------------------------------------------- TcpPeer integration ---

// Two TcpPeers over a lossy, delayed pipe (mirrors tests/tcp_test.cc's
// harness but with a configurable congestion-control algorithm).
class CcHarness {
 public:
  explicit CcHarness(CcAlgorithm algo, Micros one_way_delay = Milliseconds(10))
      : delay_(one_way_delay) {
    TcpConfig cfg;
    cfg.cc_algorithm = algo;
    client_ = std::make_unique<TcpPeer>(
        events_, Rng(1), 10000, 80, /*initiator=*/true, cfg,
        [this](const TcpSegment& seg) { Pipe(seg, /*to_server=*/true); });
    server_ = std::make_unique<TcpPeer>(
        events_, Rng(2), 80, 10000, /*initiator=*/false, cfg,
        [this](const TcpSegment& seg) { Pipe(seg, /*to_server=*/false); });
  }

  void Pipe(const TcpSegment& seg, bool to_server) {
    auto& drops = to_server ? drop_to_server_ : drop_to_client_;
    if (!drops.empty() && drops.front() == counter_[to_server]) {
      drops.pop_front();
      ++counter_[to_server];
      return;
    }
    ++counter_[to_server];
    events_.ScheduleIn(delay_, [this, seg, to_server] {
      (to_server ? server_ : client_)->OnSegmentReceived(seg);
    });
  }
  void DropNth(bool to_server, int n) {
    (to_server ? drop_to_server_ : drop_to_client_).push_back(n);
  }

  EventQueue events_;
  Micros delay_;
  std::unique_ptr<TcpPeer> client_;
  std::unique_ptr<TcpPeer> server_;
  std::deque<int> drop_to_server_;
  std::deque<int> drop_to_client_;
  int counter_[2] = {0, 0};
};

class CcTransferTest : public ::testing::TestWithParam<CcAlgorithm> {};

TEST_P(CcTransferTest, LossyTransferDeliversAllBytes) {
  CcHarness h(GetParam());
  h.DropNth(/*to_server=*/false, 4);
  h.DropNth(/*to_server=*/false, 9);
  std::uint64_t received = 0;
  bool done = false;
  h.client_->set_data_sink([&](std::uint32_t n) { received += n; });
  h.server_->set_on_connected([&] { h.server_->SendData(200'000); });
  h.server_->set_on_transfer_done([&] { done = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(120));
  EXPECT_TRUE(done) << "cc=" << CcAlgorithmName(GetParam());
  EXPECT_EQ(received, 200'000u);
  EXPECT_GE(h.server_->stats().retransmissions, 1u);
  EXPECT_STREQ(h.server_->cc().Name(), CcAlgorithmName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CcTransferTest,
                         ::testing::Values(CcAlgorithm::kReno,
                                           CcAlgorithm::kCubic,
                                           CcAlgorithm::kBbr),
                         [](const auto& info) {
                           return std::string(CcAlgorithmName(info.param));
                         });

TEST(Factory, ProducesRequestedAlgorithm) {
  const CcConfig cfg = DefaultCcConfig();
  EXPECT_STREQ(MakeCongestionControl(CcAlgorithm::kReno, cfg)->Name(), "reno");
  EXPECT_STREQ(MakeCongestionControl(CcAlgorithm::kCubic, cfg)->Name(),
               "cubic");
  EXPECT_STREQ(MakeCongestionControl(CcAlgorithm::kBbr, cfg)->Name(), "bbr");
  EXPECT_STREQ(CcAlgorithmName(CcAlgorithm::kCubic), "cubic");
}

}  // namespace
}  // namespace jig
