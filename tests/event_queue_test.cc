#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace jig {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(5, [&] { order.push_back(1); });
  q.Schedule(5, [&] { order.push_back(2); });
  q.Schedule(5, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  q.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  q.RunUntil(25);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // already cancelled
  q.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEvent));
  EXPECT_FALSE(q.Cancel(99999));
}

TEST(EventQueue, EventsScheduleEvents) {
  EventQueue q;
  std::vector<TrueMicros> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now());
    if (times.size() < 5) q.ScheduleIn(10, chain);
  };
  q.Schedule(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(times, (std::vector<TrueMicros>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.RunUntil(100);
  TrueMicros fired_at = -1;
  q.Schedule(50, [&] { fired_at = q.now(); });  // in the past
  q.RunUntil(200);
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, CancelDuringExecution) {
  EventQueue q;
  int fired = 0;
  EventId later = kInvalidEvent;
  q.Schedule(10, [&] { q.Cancel(later); });
  later = q.Schedule(20, [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ExecutedCount) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.Schedule(i, [] {});
  q.RunAll();
  EXPECT_EQ(q.executed(), 7u);
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace jig
