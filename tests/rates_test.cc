#include "wifi/rates.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

TEST(Rates, Classification) {
  EXPECT_TRUE(IsCck(PhyRate::kB1));
  EXPECT_TRUE(IsCck(PhyRate::kB11));
  EXPECT_TRUE(IsOfdm(PhyRate::kG6));
  EXPECT_TRUE(IsOfdm(PhyRate::kG54));
}

TEST(Rates, Mbps) {
  EXPECT_DOUBLE_EQ(RateMbps(PhyRate::kB1), 1.0);
  EXPECT_DOUBLE_EQ(RateMbps(PhyRate::kB5_5), 5.5);
  EXPECT_DOUBLE_EQ(RateMbps(PhyRate::kG54), 54.0);
}

// The paper's footnote 7 costs protection overhead precisely: "CTS: 248 us
// (our APs send CTS at 2 Mbps with the long preamble) ... ACK: 28 us" (at
// 24 Mbps OFDM).  Our air-time math must reproduce those numbers.
TEST(Rates, PaperFootnote7CtsTime) {
  // 14-byte CTS at 2 Mbps CCK with 192 us long preamble:
  // 192 + 14*8/2 = 192 + 56 = 248 us.
  EXPECT_EQ(TxDurationMicros(PhyRate::kB2, kCtsBytes), 248);
}

TEST(Rates, PaperFootnote7AckTime) {
  // 14-byte ACK at 24 Mbps OFDM: 20 us PLCP + ceil((16+112+6)/96)*4 + 6
  // = 20 + 8 + 6 = 34; the paper quotes 28 us (no signal extension).
  // With the 802.11g 6 us signal extension we are 6 us above the paper's
  // 802.11a-style figure.
  EXPECT_EQ(TxDurationMicros(PhyRate::kG24, kAckBytes), 34);
}

TEST(Rates, OfdmSymbolQuantization) {
  // OFDM air time quantizes to whole 4 us symbols.
  const Micros t0 = TxDurationMicros(PhyRate::kG54, 100);
  const Micros t1 = TxDurationMicros(PhyRate::kG54, 101);
  EXPECT_TRUE(t0 == t1 || t1 - t0 == 4);
}

TEST(Rates, CckTimeLinearInBytes) {
  // 1 Mbps CCK: 8 us per byte after the preamble.
  EXPECT_EQ(TxDurationMicros(PhyRate::kB1, 100) -
                TxDurationMicros(PhyRate::kB1, 99),
            8);
}

TEST(Rates, FasterRateNeverSlower) {
  for (std::size_t bytes : {14u, 100u, 1500u}) {
    EXPECT_LE(TxDurationMicros(PhyRate::kB11, bytes),
              TxDurationMicros(PhyRate::kB1, bytes));
    EXPECT_LE(TxDurationMicros(PhyRate::kG54, bytes),
              TxDurationMicros(PhyRate::kG6, bytes));
  }
}

TEST(Rates, ControlResponseRates) {
  EXPECT_EQ(ControlResponseRate(PhyRate::kB1), PhyRate::kB1);
  EXPECT_EQ(ControlResponseRate(PhyRate::kB11), PhyRate::kB2);
  EXPECT_EQ(ControlResponseRate(PhyRate::kG6), PhyRate::kG6);
  EXPECT_EQ(ControlResponseRate(PhyRate::kG18), PhyRate::kG12);
  EXPECT_EQ(ControlResponseRate(PhyRate::kG54), PhyRate::kG24);
}

TEST(Rates, AckDurationFieldCoversSifsPlusAck) {
  for (PhyRate r : kAllRates) {
    const Micros d = AckDurationFieldMicros(r);
    EXPECT_EQ(d, kSifs + TxDurationMicros(ControlResponseRate(r), kAckBytes));
    EXPECT_GT(d, kSifs);
  }
}

class RateOrderTest : public ::testing::TestWithParam<PhyRate> {};

TEST_P(RateOrderTest, SensitivityAndSinrMonotoneInRate) {
  const PhyRate r = GetParam();
  // Within a PHY family, faster rates need stronger signal.
  for (PhyRate other : kAllRates) {
    if (IsOfdm(other) != IsOfdm(r)) continue;
    if (RateMbps(other) < RateMbps(r)) {
      EXPECT_LE(SensitivityDbm(other), SensitivityDbm(r))
          << RateName(other) << " vs " << RateName(r);
      EXPECT_LE(RequiredSinrDb(other), RequiredSinrDb(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRates, RateOrderTest,
                         ::testing::ValuesIn(kAllRates));

TEST(Rates, NamesDistinct) {
  std::set<std::string> names;
  for (PhyRate r : kAllRates) names.insert(RateName(r));
  EXPECT_EQ(names.size(), kAllRates.size());
}

TEST(Rates, MacTimingConstants) {
  EXPECT_EQ(kSifs, 10);
  EXPECT_EQ(kSlotTime, 20);
  EXPECT_EQ(kDifs, 50);  // SIFS + 2 slots
}

}  // namespace
}  // namespace jig
