// Always-on service pins (src/jigsaw/service.{h,cc}): checkpoint format,
// crash recovery, clean shutdown, and multi-deployment soak.
//
// The central contract extends the pipeline's determinism guarantee into
// the restart dimension: a monitor killed at ANY point (mid output write,
// between emit and checkpoint, between checkpoint and the next emit, with
// a torn trailing block) and restarted over the same state directory ends
// with an output log whose decoded jframe stream is byte-identical to the
// uninterrupted run's — across threads {1, 2, auto} and the merge spill
// tier on/off.  The kill points are injected with tests/fault_injection.h;
// nothing here sleeps or races a real signal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "fault_injection.h"
#include "jframe_equality.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/service.h"
#include "jigsaw/spill.h"
#include "obs/metrics.h"
#include "synthetic.h"
#include "trace/trace_set.h"
#include "util/byte_io.h"

namespace jig {
namespace {

namespace fs = std::filesystem;
using testing::FaultyStream;
using testing::KillAfterAppend;
using testing::KillOnNthCall;
using testing::KillPoint;
using testing::MultiChannelNetwork;
using testing::TearFileTail;
using testing::WrapRadio;

constexpr std::size_t kRadios = 6;  // MultiChannelNetwork's deployment
constexpr int kMaxRounds = 200000;  // progress guard, not a timing knob

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Writes the synthetic deployment's traces (finalized) and returns the
  // directory.
  fs::path WriteTraces(std::uint64_t seed, TrueMicros duration = Seconds(2),
                       const std::string& subdir = "traces") {
    const fs::path traces = dir_ / subdir;
    MultiChannelNetwork(seed, duration).Build().WriteDirectory(traces);
    return traces;
  }

  DeploymentConfig Cfg(const std::string& name, const fs::path& traces,
                       unsigned threads = 1, bool spill = false) {
    DeploymentConfig c;
    c.name = name;
    c.trace_dir = traces;
    c.state_dir = dir_ / ("state-" + name);
    c.expected_traces = kRadios;
    c.merge.threads = threads;
    if (spill) {
      c.merge.spill_dir = c.state_dir / "merge-spill";
      c.merge.spill_threshold = 64;
    }
    // Small segments/blocks so rotation, torn tails, and retention all
    // engage on a two-second synthetic capture (whole log ~10-20 KiB).
    c.output_segment_bytes = 4u << 10;
    c.output_records_per_block = 16;
    return c;
  }

  fs::path dir_;
};

struct LogContents {
  std::vector<JFrame> jframes;
  Bytes bytes;  // SerializeJFrame of every jframe, concatenated in order
  std::vector<std::uint64_t> sequences;
};

LogContents ReadLog(const fs::path& state_dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> segs;
  for (const auto& entry : fs::directory_iterator(state_dir / "out")) {
    if (entry.path().extension() != ".jigs") continue;
    std::uint64_t seq = 0;
    sscanf(entry.path().filename().string().c_str(), "out-%" SCNu64 ".jigs",
           &seq);
    segs.emplace_back(seq, entry.path());
  }
  std::sort(segs.begin(), segs.end());
  LogContents out;
  for (const auto& [seq, path] : segs) {
    out.sequences.push_back(seq);
    SpillSegmentReader reader(path, /*strict=*/false);
    EXPECT_EQ(reader.header().sequence, seq);
    while (auto jf = reader.Next()) {
      SerializeJFrame(*jf, out.bytes);
      out.jframes.push_back(std::move(*jf));
    }
  }
  return out;
}

void RunToDone(DeploymentMonitor& m) {
  for (int i = 0; i < kMaxRounds; ++i) {
    if (m.PollOnce() == DeploymentMonitor::State::kDone) return;
  }
  FAIL() << "monitor " << m.name() << " never completed";
}

// Runs PollOnce until the injected KillPoint fires; the monitor must come
// out marked failed (its destructor then leaves crash-faithful state).
void RunUntilKilled(DeploymentMonitor& m) {
  for (int i = 0; i < kMaxRounds; ++i) {
    try {
      if (m.PollOnce() == DeploymentMonitor::State::kDone) {
        FAIL() << "monitor completed without hitting the kill point";
        return;
      }
    } catch (const KillPoint&) {
      EXPECT_EQ(m.state(), DeploymentMonitor::State::kFailed);
      return;
    }
  }
  FAIL() << "kill point never fired";
}

// ---------------------------------------------------------------------------
// Checkpoint format.

Checkpoint SampleCheckpoint() {
  Checkpoint cp;
  cp.deployment = "lab-floor2";
  cp.emitted = 12345;
  cp.active_sequence = 7;
  cp.active_base = 12000;
  cp.frontiers = {{0, 4096, true}, {1, 4097, false}, {9, 0, false}};
  cp.segments = {{5, 11000, 1'500'000, 32768, true},
                 {6, 11500, 1'600'000, 32768, true},
                 {7, 12000, 1'650'000, 4096, false}};
  return cp;
}

TEST_F(ServiceTest, CheckpointRoundtrip) {
  const fs::path path = dir_ / "cp.jigc";
  const Checkpoint cp = SampleCheckpoint();
  SaveCheckpoint(path, cp);
  const Checkpoint back = LoadCheckpoint(path);
  EXPECT_EQ(back.deployment, cp.deployment);
  EXPECT_EQ(back.emitted, cp.emitted);
  EXPECT_EQ(back.active_sequence, cp.active_sequence);
  EXPECT_EQ(back.active_base, cp.active_base);
  ASSERT_EQ(back.frontiers.size(), cp.frontiers.size());
  for (std::size_t i = 0; i < cp.frontiers.size(); ++i) {
    EXPECT_EQ(back.frontiers[i].radio, cp.frontiers[i].radio);
    EXPECT_EQ(back.frontiers[i].records_seen, cp.frontiers[i].records_seen);
    EXPECT_EQ(back.frontiers[i].finalized, cp.frontiers[i].finalized);
  }
  ASSERT_EQ(back.segments.size(), cp.segments.size());
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    EXPECT_EQ(back.segments[i].sequence, cp.segments[i].sequence);
    EXPECT_EQ(back.segments[i].base_index, cp.segments[i].base_index);
    EXPECT_EQ(back.segments[i].max_timestamp, cp.segments[i].max_timestamp);
    EXPECT_EQ(back.segments[i].bytes, cp.segments[i].bytes);
    EXPECT_EQ(back.segments[i].sealed, cp.segments[i].sealed);
  }
}

TEST_F(ServiceTest, CheckpointCorruptionIsDetected) {
  const fs::path path = dir_ / "cp.jigc";
  SaveCheckpoint(path, SampleCheckpoint());

  // Truncation (a torn checkpoint write can never exist — SaveCheckpoint
  // goes through an atomic rename — but a filesystem that lost the tail
  // must still be caught).
  fs::copy_file(path, dir_ / "short.jigc");
  fs::resize_file(dir_ / "short.jigc", 8);
  EXPECT_THROW(LoadCheckpoint(dir_ / "short.jigc"), TraceTruncatedError);

  // Bit rot anywhere flips the CRC.
  fs::copy_file(path, dir_ / "rot.jigc");
  {
    const auto size = fs::file_size(dir_ / "rot.jigc");
    std::FILE* f = std::fopen((dir_ / "rot.jigc").string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    std::fputc('!', f);
    std::fclose(f);
  }
  EXPECT_THROW(LoadCheckpoint(dir_ / "rot.jigc"), TraceCorruptError);

  // A different format's file.
  fs::copy_file(path, dir_ / "magic.jigc");
  {
    std::FILE* f = std::fopen((dir_ / "magic.jigc").string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputs("JIGT", f);
    std::fclose(f);
  }
  EXPECT_THROW(LoadCheckpoint(dir_ / "magic.jigc"), TraceCorruptError);
}

// ---------------------------------------------------------------------------
// Fresh run: the durable log IS the merged stream.

TEST_F(ServiceTest, LogMatchesDirectMerge) {
  const fs::path traces = WriteTraces(41);

  // Reference: the plain batch merge over the same directory.
  Bytes expect_bytes;
  std::size_t expect_count = 0;
  {
    TraceSet set = TraceSet::OpenDirectory(traces);
    MergeConfig mcfg;
    MergeSession session(set, mcfg, [&](JFrame&& jf) {
      SerializeJFrame(jf, expect_bytes);
      ++expect_count;
    });
    session.Drain();
  }
  ASSERT_GT(expect_count, 100u);

  DeploymentMonitor monitor(Cfg("fresh", traces));
  RunToDone(monitor);
  EXPECT_EQ(monitor.jframes_persisted(), expect_count);
  EXPECT_FALSE(monitor.recovered_from_checkpoint());

  const LogContents log = ReadLog(dir_ / "state-fresh");
  EXPECT_EQ(log.bytes, expect_bytes);
  // Rotation engaged (tiny segments) and numbering is dense from zero.
  EXPECT_GT(log.sequences.size(), 1u);
  for (std::size_t i = 0; i < log.sequences.size(); ++i) {
    EXPECT_EQ(log.sequences[i], i);
  }
}

// ---------------------------------------------------------------------------
// Crash-recovery equivalence matrix.

struct MatrixParam {
  unsigned threads;
  bool spill;
};

class ServiceRecoveryMatrix
    : public ServiceTest,
      public ::testing::WithParamInterface<MatrixParam> {};

// Killed mid output write at a fixed jframe index, restarted, run to
// completion: the cumulative decoded log is byte-identical to the
// uninterrupted run's, for every threads x spill combination.
TEST_P(ServiceRecoveryMatrix, KillDuringOutputWriteThenRestart) {
  const auto [threads, spill] = GetParam();
  const fs::path traces = WriteTraces(42);

  DeploymentConfig base = Cfg("base", traces, threads, spill);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);
  ASSERT_GT(expect.jframes.size(), 300u);

  DeploymentConfig crash = Cfg("crash", traces, threads, spill);
  // Past the first block cut (16 records/block), so durable blocks and a
  // pending tail both exist at the kill.
  crash.hooks.after_output_append = KillAfterAppend(137);
  {
    DeploymentMonitor victim(crash);
    RunUntilKilled(victim);
  }  // destructor abandons the open segment, as SIGKILL would

  DeploymentConfig resume = Cfg("crash", traces, threads, spill);
  DeploymentMonitor restarted(resume);
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);

  const LogContents got = ReadLog(resume.state_dir);
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
  EXPECT_EQ(restarted.jframes_persisted(), expect.jframes.size());
  // What was durable at the kill (everything appended, minus at most one
  // uncut block the "SIGKILL" tore off) was suppressed, not re-emitted.
  EXPECT_LE(restarted.recovered_jframes(), 138u);
  EXPECT_GE(restarted.recovered_jframes(), 138u - 16u);
}

// Killed between emit and checkpoint: the log is AHEAD of the checkpoint
// table (jframes durable that no checkpoint mentions).  The restart must
// derive the durable count from the log itself, not the stale table.
TEST_P(ServiceRecoveryMatrix, KillBetweenEmitAndCheckpointThenRestart) {
  const auto [threads, spill] = GetParam();
  const fs::path traces = WriteTraces(42);

  DeploymentConfig base = Cfg("base", traces, threads, spill);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);

  DeploymentConfig crash = Cfg("crash", traces, threads, spill);
  // Call #1 is the constructor's checkpoint; #2 is the first one that
  // follows appends — killing BEFORE it leaves every durable jframe
  // unmentioned by any checkpoint.
  crash.hooks.before_checkpoint = KillOnNthCall("before checkpoint", 2);
  {
    DeploymentMonitor victim(crash);
    RunUntilKilled(victim);
  }

  DeploymentMonitor restarted(Cfg("crash", traces, threads, spill));
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);

  const LogContents got = ReadLog(dir_ / "state-crash");
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
}

// Killed right after a checkpoint landed: table and log agree, nothing
// new since.  Recovery must suppress exactly the durable count and
// continue — re-emitting or dropping even one jframe breaks identity.
TEST_P(ServiceRecoveryMatrix, KillBetweenCheckpointAndEmitThenRestart) {
  const auto [threads, spill] = GetParam();
  const fs::path traces = WriteTraces(42);

  DeploymentConfig base = Cfg("base", traces, threads, spill);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);

  DeploymentConfig crash = Cfg("crash", traces, threads, spill);
  crash.hooks.after_checkpoint = KillOnNthCall("after checkpoint", 2);
  {
    DeploymentMonitor victim(crash);
    RunUntilKilled(victim);
  }

  DeploymentMonitor restarted(Cfg("crash", traces, threads, spill));
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);

  const LogContents got = ReadLog(dir_ / "state-crash");
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
}

// A power cut can also tear the newest segment's trailing block AFTER the
// process died (lost page-cache tail).  Recovery's tail-mode read must
// stop at the last complete block, repair the segment, and resume from
// the reduced durable count — still byte-identical.
TEST_P(ServiceRecoveryMatrix, TornOutputTailRepairedOnRestart) {
  const auto [threads, spill] = GetParam();
  const fs::path traces = WriteTraces(42);

  DeploymentConfig base = Cfg("base", traces, threads, spill);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);

  DeploymentConfig crash = Cfg("crash", traces, threads, spill);
  crash.hooks.after_output_append = KillAfterAppend(137);
  {
    DeploymentMonitor victim(crash);
    RunUntilKilled(victim);
  }
  // Tear bytes off the newest segment — mid-block, so its last block no
  // longer parses and the tail read must discard it.
  std::vector<fs::path> segs;
  for (const auto& entry :
       fs::directory_iterator(dir_ / "state-crash" / "out")) {
    if (entry.path().extension() == ".jigs") segs.push_back(entry.path());
  }
  ASSERT_FALSE(segs.empty());
  const fs::path newest = *std::max_element(segs.begin(), segs.end());
  ASSERT_GT(fs::file_size(newest), 7u);
  TearFileTail(newest, 7);

  DeploymentMonitor restarted(Cfg("crash", traces, threads, spill));
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);

  const LogContents got = ReadLog(dir_ / "state-crash");
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
}

// Killed while READING a trace (mid merge consumption — with the spill
// dimension on, this lands amid spill-segment writes): the output writer
// is mid-stream with an uncut pending block.  Restart without the fault
// completes the identical stream.
TEST_P(ServiceRecoveryMatrix, KillDuringTraceReadThenRestart) {
  const auto [threads, spill] = GetParam();
  const fs::path traces = WriteTraces(42);

  DeploymentConfig base = Cfg("base", traces, threads, spill);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);

  DeploymentConfig crash = Cfg("crash", traces, threads, spill);
  {
    // Radio 2 dies at record #100 of its ~160-record capture — the merge
    // is mid-consumption, the output writer mid-stream.
    DeploymentMonitor victim(crash,
                             WrapRadio(2, {.kill_at = 100}));
    RunUntilKilled(victim);
  }

  DeploymentMonitor restarted(Cfg("crash", traces, threads, spill));
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);

  const LogContents got = ReadLog(dir_ / "state-crash");
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsBySpill, ServiceRecoveryMatrix,
    ::testing::Values(MatrixParam{1, false}, MatrixParam{2, false},
                      MatrixParam{0, false}, MatrixParam{1, true},
                      MatrixParam{2, true}, MatrixParam{0, true}),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return "threads" + std::to_string(info.param.threads) +
             (info.param.spill ? "_spill" : "_nospill");
    });

// ---------------------------------------------------------------------------
// Clean shutdown (the SIGTERM door).

// Shutdown() mid-stream publishes the pending block and checkpoints; a
// restart over that state resumes the stream where it stopped and the
// cumulative log is byte-identical to an uninterrupted run.
TEST_F(ServiceTest, CleanShutdownThenRestartResumesSameStream) {
  const fs::path traces = WriteTraces(43);

  DeploymentConfig base = Cfg("base", traces);
  DeploymentMonitor baseline(base);
  RunToDone(baseline);
  const LogContents expect = ReadLog(base.state_dir);

  std::uint64_t at_shutdown = 0;
  {
    // Radio 1 stalls at record 80 of its ~160-record capture like a
    // lagging writer, so the monitor is genuinely mid-stream (some
    // jframes emitted, more to come) when the shutdown lands.
    DeploymentConfig first = Cfg("svc", traces);
    DeploymentMonitor m(first, WrapRadio(1, {.stall_at = 80}));
    for (int i = 0; i < kMaxRounds && m.jframes_persisted() == 0; ++i) {
      ASSERT_NE(m.PollOnce(), DeploymentMonitor::State::kDone)
          << "stalled radio must keep the monitor mid-stream";
    }
    ASSERT_GT(m.jframes_persisted(), 0u);
    m.Shutdown();
    at_shutdown = m.jframes_persisted();
  }  // clean destructor: the open segment seals

  DeploymentMonitor restarted(Cfg("svc", traces));
  EXPECT_TRUE(restarted.recovered_from_checkpoint());
  RunToDone(restarted);
  EXPECT_EQ(restarted.recovered_jframes(), at_shutdown);

  const LogContents got = ReadLog(dir_ / "state-svc");
  EXPECT_EQ(got.bytes, expect.bytes);
  testing::ExpectIdenticalStreams(got.jframes, expect.jframes);
}

// ---------------------------------------------------------------------------
// Service-level multiplexing.

// One deployment's escaped error (an injected kill) must not take its
// siblings down: the service marks it failed, counts it, and the others
// run to completion.
TEST_F(ServiceTest, ServiceIsolatesAFailingDeployment) {
  const fs::path traces = WriteTraces(44);
  const std::int64_t failures_before = obs::MetricRegistry::Global()
                                           .Collect()
                                           .Value("jig_service_deployment_failures_total");

  MonitorService service;
  DeploymentConfig bad = Cfg("bad", traces);
  bad.hooks.after_output_append = KillAfterAppend(10);
  service.AddDeployment(std::move(bad));
  service.AddDeployment(Cfg("good-a", traces));
  service.AddDeployment(Cfg("good-b", traces));

  for (int i = 0; i < kMaxRounds && service.PollOnce() > 0; ++i) {
  }
  EXPECT_EQ(service.monitor(0).state(), DeploymentMonitor::State::kFailed);
  EXPECT_EQ(service.monitor(1).state(), DeploymentMonitor::State::kDone);
  EXPECT_EQ(service.monitor(2).state(), DeploymentMonitor::State::kDone);
  EXPECT_EQ(obs::MetricRegistry::Global().Collect().Value(
                "jig_service_deployment_failures_total"),
            failures_before + 1);
  // The snapshot exposes all three, the failed one labeled as such.
  const std::string json = service.SnapshotJson();
  EXPECT_NE(json.find("\"name\":\"bad\",\"state\":\"failed\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"good-a\",\"state\":\"done\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Soak: many deployments, churn, bounded retention.

// 64 deployments multiplexed through one MonitorService, with churn —
// radios that lag (stall mid-stream), radios whose peers finalize early
// (delayed finalize markers), and deployments whose last radio joins
// late — while rolling retention keeps every deployment's bytes-on-disk
// and the merge's retained-jframe gauge under their configured bounds
// for the WHOLE run, not just at the end.
TEST_F(ServiceTest, SoakManyDeploymentsChurnBoundedRetention) {
  constexpr std::size_t kDeployments = 64;
  constexpr std::uint64_t kByteCap = 16u << 10;
  constexpr std::uint64_t kSegmentBytes = 4u << 10;
  // The merge's own bounded-retention watermark dominates this: the
  // reorder horizon plus shard queues stay well under the capture size.
  constexpr std::uint64_t kRetainedCap = 4096;

  // Four distinct synthetic captures, shared round-robin.
  std::vector<fs::path> shared;
  for (int i = 0; i < 4; ++i) {
    shared.push_back(WriteTraces(100 + static_cast<std::uint64_t>(i),
                                 Seconds(1), "cap" + std::to_string(i)));
  }

  MonitorService service;
  std::vector<FaultyStream*> faulty(kDeployments, nullptr);
  // Late joiners: (hidden source file, destination) pairs to copy mid-run.
  std::vector<std::pair<fs::path, fs::path>> joins;

  for (std::size_t i = 0; i < kDeployments; ++i) {
    const fs::path& capture = shared[i % shared.size()];
    fs::path tdir = capture;
    DeploymentMonitor::StreamWrapper wrapper;
    switch (i % 4) {
      case 1:  // a lagging radio: parks mid-stream until released
        wrapper = WrapRadio(static_cast<std::uint32_t>(i % kRadios),
                            {.stall_at = 40}, &faulty[i]);
        break;
      case 2:  // its peers finalize early; this radio's marker lags
        wrapper = WrapRadio(static_cast<std::uint32_t>(i % kRadios),
                            {.delay_finalize = true}, &faulty[i]);
        break;
      case 3: {  // the last radio joins only mid-run
        tdir = dir_ / ("join" + std::to_string(i));
        fs::create_directories(tdir);
        bool held = false;
        for (const auto& entry : fs::directory_iterator(capture)) {
          if (entry.path().extension() == ".jigt" && !held) {
            joins.emplace_back(entry.path(),
                               tdir / entry.path().filename());
            held = true;
          } else {
            fs::copy_file(entry.path(), tdir / entry.path().filename());
          }
        }
        ASSERT_TRUE(held);
        break;
      }
      default:
        break;
    }
    DeploymentConfig cfg = Cfg("d" + std::to_string(i), tdir);
    cfg.retention_window_us = 300'000;
    cfg.max_output_bytes = kByteCap;
    service.AddDeployment(std::move(cfg), std::move(wrapper));
  }
  ASSERT_EQ(service.deployments(), kDeployments);

  bool joined = false;
  bool released = false;
  int rounds = 0;
  for (; rounds < kMaxRounds; ++rounds) {
    const std::size_t active = service.PollOnce();
    // Bounds hold EVERY round, not just at the end.
    for (std::size_t i = 0; i < kDeployments; ++i) {
      DeploymentMonitor& m = service.monitor(i);
      ASSERT_LE(m.output_bytes_on_disk(), kByteCap + kSegmentBytes)
          << "deployment " << m.name() << " round " << rounds;
      ASSERT_LE(m.Status().retained_jframes, kRetainedCap)
          << "deployment " << m.name() << " round " << rounds;
      ASSERT_NE(m.state(), DeploymentMonitor::State::kFailed);
    }
    if (rounds == 20 && !joined) {
      for (const auto& [src, dst] : joins) fs::copy_file(src, dst);
      joined = true;
    }
    if (rounds == 40 && !released) {
      for (FaultyStream* f : faulty) {
        if (f != nullptr) f->Release();
      }
      released = true;
    }
    if (active == 0 && joined && released) break;
  }
  ASSERT_LT(rounds, kMaxRounds) << "soak never converged";

  for (std::size_t i = 0; i < kDeployments; ++i) {
    DeploymentMonitor& m = service.monitor(i);
    EXPECT_EQ(m.state(), DeploymentMonitor::State::kDone) << m.name();
    EXPECT_GT(m.jframes_persisted(), 0u) << m.name();
    // Retention pruned the log: the survivor set decodes cleanly and
    // stays under the cap.
    const fs::path state = dir_ / ("state-d" + std::to_string(i));
    const LogContents log = ReadLog(state);
    EXPECT_FALSE(log.jframes.empty()) << m.name();
    EXPECT_LE(m.output_bytes_on_disk(), kByteCap + kSegmentBytes);
  }
  // The per-deployment gauges the exposition carries agree with the
  // monitors' own accounting (spot-check one label), and the caps were
  // live constraints, not slack: retention actually deleted segments.
  const auto snap = obs::MetricRegistry::Global().Collect();
  EXPECT_EQ(snap.Value("jig_service_output_bytes", "deployment=\"d0\""),
            static_cast<std::int64_t>(
                service.monitor(0).output_bytes_on_disk()));
  std::int64_t deletes = 0;
  for (const auto& s : snap.samples) {
    if (s.name == "jig_service_retention_deleted_segments_total") {
      deletes += s.value;
    }
  }
  EXPECT_GT(deletes, 0);
}

}  // namespace
}  // namespace jig
