#include "sim/tcp.h"

#include <gtest/gtest.h>

#include <deque>

#include "sim/event_queue.h"

namespace jig {
namespace {

// Connects two TcpPeers over a configurable lossy, delayed pipe.
class TcpHarness {
 public:
  explicit TcpHarness(Micros one_way_delay = Milliseconds(10))
      : delay_(one_way_delay) {
    TcpConfig cfg;
    client_ = std::make_unique<TcpPeer>(
        events_, Rng(1), 10000, 80, /*initiator=*/true, cfg,
        [this](const TcpSegment& seg) { Pipe(seg, /*to_server=*/true); });
    server_ = std::make_unique<TcpPeer>(
        events_, Rng(2), 80, 10000, /*initiator=*/false, cfg,
        [this](const TcpSegment& seg) { Pipe(seg, /*to_server=*/false); });
  }

  void Pipe(const TcpSegment& seg, bool to_server) {
    auto& drops = to_server ? drop_to_server_ : drop_to_client_;
    if (!drops.empty() && drops.front() == counter_[to_server]) {
      drops.pop_front();
      ++counter_[to_server];
      return;  // dropped
    }
    ++counter_[to_server];
    events_.ScheduleIn(delay_, [this, seg, to_server] {
      (to_server ? server_ : client_)->OnSegmentReceived(seg);
    });
  }

  // Drops the nth segment (0-based) flowing in the given direction.
  void DropNth(bool to_server, int n) {
    (to_server ? drop_to_server_ : drop_to_client_).push_back(n);
  }

  EventQueue events_;
  Micros delay_;
  std::unique_ptr<TcpPeer> client_;
  std::unique_ptr<TcpPeer> server_;
  std::deque<int> drop_to_server_;
  std::deque<int> drop_to_client_;
  int counter_[2] = {0, 0};
};

TEST(Tcp, HandshakeCompletes) {
  TcpHarness h;
  bool client_up = false, server_up = false;
  h.client_->set_on_connected([&] { client_up = true; });
  h.server_->set_on_connected([&] { server_up = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(1));
  EXPECT_TRUE(client_up);
  EXPECT_TRUE(server_up);
  EXPECT_TRUE(h.client_->connected());
  EXPECT_TRUE(h.server_->connected());
}

TEST(Tcp, TransferDeliversAllBytes) {
  TcpHarness h;
  std::uint64_t received = 0;
  bool done = false;
  h.client_->set_data_sink([&](std::uint32_t n) { received += n; });
  h.server_->set_on_connected([&] { h.server_->SendData(100'000); });
  h.server_->set_on_transfer_done([&] { done = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(30));
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 100'000u);
  EXPECT_EQ(h.server_->stats().retransmissions, 0u);
}

TEST(Tcp, LostSynRetransmitted) {
  TcpHarness h;
  h.DropNth(/*to_server=*/true, 0);  // the SYN
  bool up = false;
  h.client_->set_on_connected([&] { up = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(10));
  EXPECT_TRUE(up);
  EXPECT_GE(h.client_->stats().rto_fires, 1u);
}

TEST(Tcp, LostDataSegmentRecovered) {
  TcpHarness h;
  // Drop one mid-stream data segment (after SYN-ACK/ACK exchange the 4th
  // to-client segment is data).
  h.DropNth(/*to_server=*/false, 4);
  std::uint64_t received = 0;
  bool done = false;
  h.client_->set_data_sink([&](std::uint32_t n) { received += n; });
  h.server_->set_on_connected([&] { h.server_->SendData(60'000); });
  h.server_->set_on_transfer_done([&] { done = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(30));
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 60'000u);
  EXPECT_GE(h.server_->stats().retransmissions, 1u);
}

TEST(Tcp, FastRetransmitOnTripleDupack) {
  TcpHarness h;
  h.DropNth(false, 4);
  bool done = false;
  h.server_->set_on_connected([&] { h.server_->SendData(120'000); });
  h.server_->set_on_transfer_done([&] { done = true; });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(60));
  EXPECT_TRUE(done);
  // With a large window in flight, dupacks trigger recovery without RTO.
  EXPECT_GE(h.server_->stats().fast_retransmits, 1u);
}

TEST(Tcp, BidirectionalChat) {
  TcpHarness h;
  std::uint64_t client_got = 0, server_got = 0;
  h.client_->set_data_sink([&](std::uint32_t n) { client_got += n; });
  h.server_->set_data_sink([&](std::uint32_t n) { server_got += n; });
  h.client_->set_on_connected([&] {
    h.client_->SendData(500);
    h.server_->SendData(3000);
  });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(10));
  EXPECT_EQ(server_got, 500u);
  EXPECT_EQ(client_got, 3000u);
}

TEST(Tcp, RttEstimateTracksPipeDelay) {
  TcpHarness h(Milliseconds(25));  // RTT = 50 ms
  h.server_->set_on_connected([&] { h.server_->SendData(50'000); });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(30));
  EXPECT_NEAR(h.server_->srtt_ms(), 50.0, 15.0);
}

TEST(Tcp, CloseReachesClosedState) {
  TcpHarness h;
  bool done = false;
  h.server_->set_on_connected([&] { h.server_->SendData(5'000); });
  h.server_->set_on_transfer_done([&] {
    done = true;
    h.server_->Close();
  });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(30));
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.server_->closed());
}

TEST(Tcp, CwndGrowsFromSlowStart) {
  TcpHarness h;  // RTT = 20 ms
  h.server_->set_on_connected([&] { h.server_->SendData(5'000'000); });
  h.client_->StartConnect();
  // Sample in-flight data one RTT into the transfer vs several RTTs in.
  std::uint64_t early_inflight = 0;
  h.events_.ScheduleIn(Milliseconds(45), [&] {
    early_inflight = h.server_->bytes_unacked();
  });
  std::uint64_t late_inflight = 0;
  h.events_.ScheduleIn(Milliseconds(150), [&] {
    late_inflight = h.server_->bytes_unacked();
  });
  h.events_.RunUntil(Milliseconds(200));
  EXPECT_GT(early_inflight, 0u);
  EXPECT_GT(late_inflight, early_inflight);
}

TEST(Tcp, StatsCountSegments) {
  TcpHarness h;
  h.server_->set_on_connected([&] { h.server_->SendData(14'600); });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(10));
  // 10 MSS segments + SYN-ACK + ACKs of client data (none) etc.
  EXPECT_GE(h.server_->stats().segments_sent, 11u);
  EXPECT_EQ(h.server_->stats().bytes_sent, 14'600u);
}

class TcpLossPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossPatternTest, RecoversFromAnySingleLoss) {
  TcpHarness h;
  h.DropNth(false, GetParam());
  std::uint64_t received = 0;
  h.client_->set_data_sink([&](std::uint32_t n) { received += n; });
  h.server_->set_on_connected([&] { h.server_->SendData(30'000); });
  h.client_->StartConnect();
  h.events_.RunUntil(Seconds(60));
  EXPECT_EQ(received, 30'000u) << "dropped segment #" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DropPositions, TcpLossPatternTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 20));

}  // namespace
}  // namespace jig
