#include "jigsaw/unifier.h"

#include <gtest/gtest.h>

#include "jigsaw/pipeline.h"
#include "synthetic.h"
#include "util/rng.h"

namespace jig {
namespace {

using testing::SyntheticNetwork;
using testing::SyntheticRadio;
using testing::SyntheticTx;

std::vector<JFrame> Merge(TraceSet& traces, MergeConfig cfg = {}) {
  return MergeTraces(traces, cfg).jframes;
}

TEST(Unifier, DuplicatesUnifyIntoOneJframe) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 100.0},
      {.id = 1, .monitor = 1, .offset_us = -220.0},
      {.id = 2, .monitor = 2, .offset_us = 4000.0},
  };
  SyntheticNetwork net(radios);
  net.Data(10'000, 1, 1, {0, 1, 2});
  net.Data(60'000, 1, 2, {0, 1, 2});
  auto traces = net.Build();
  const auto jframes = Merge(traces);
  ASSERT_EQ(jframes.size(), 2u);
  EXPECT_EQ(jframes[0].InstanceCount(), 3u);
  EXPECT_EQ(jframes[1].InstanceCount(), 3u);
  EXPECT_EQ(jframes[0].frame.sequence, 1);
  EXPECT_EQ(jframes[1].frame.sequence, 2);
}

TEST(Unifier, SimultaneousDistinctFramesStaySeparate) {
  // Two different transmitters at the same instant (e.g. on different
  // channels or a collision): contents differ, so they must not unify.
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0},
      {.id = 1, .monitor = 1},
  };
  SyntheticNetwork net(radios);
  net.Data(10'000, 1, 5, {0});
  net.Data(10'000, 2, 5, {1});  // same instant, different client
  net.Data(20'000, 1, 6, {0, 1});  // gives bootstrap a shared reference
  auto traces = net.Build();
  const auto jframes = Merge(traces);
  ASSERT_EQ(jframes.size(), 3u);
  EXPECT_EQ(jframes[0].InstanceCount(), 1u);
  EXPECT_EQ(jframes[1].InstanceCount(), 1u);
  EXPECT_NE(jframes[0].frame.addr2, jframes[1].frame.addr2);
}

TEST(Unifier, IdenticalAcksWithinWindowStaySeparate) {
  // Two byte-identical ACKs 1 ms apart are distinct transmissions; the
  // duplicate window must prevent cross-merging even though they fall
  // within the 10 ms search window.
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0},
      {.id = 1, .monitor = 1},
  };
  SyntheticNetwork net(radios);
  net.Data(5'000, 1, 1, {0, 1});  // reference for bootstrap
  Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  net.Transmit(SyntheticTx{
      .at = 20'000, .frame = ack, .heard_by = {0, 1}, .corrupted_at = {}});
  net.Transmit(SyntheticTx{
      .at = 21'000, .frame = ack, .heard_by = {0, 1}, .corrupted_at = {}});
  auto traces = net.Build();
  const auto jframes = Merge(traces);
  ASSERT_EQ(jframes.size(), 3u);
  EXPECT_EQ(jframes[1].InstanceCount(), 2u);
  EXPECT_EQ(jframes[2].InstanceCount(), 2u);
  EXPECT_NEAR(static_cast<double>(jframes[2].timestamp - jframes[1].timestamp),
              1000.0, 50.0);
}

TEST(Unifier, MedianTimestampUsed) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0},
      {.id = 1, .monitor = 1, .offset_us = 0.0},
      {.id = 2, .monitor = 2, .offset_us = 0.0},
  };
  SyntheticNetwork net(radios);
  net.Data(10'000, 1, 1, {0, 1, 2});
  auto traces = net.Build();
  const auto jframes = Merge(traces);
  ASSERT_EQ(jframes.size(), 1u);
  // All clocks agree (offset 0, ntp exact): timestamp ~ true time.
  EXPECT_NEAR(static_cast<double>(jframes[0].timestamp), 10'000.0, 2.0);
  EXPECT_LE(jframes[0].dispersion, 2);
}

TEST(Unifier, CorruptedInstanceAttachesToValidJframe) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0},
      {.id = 1, .monitor = 1},
      {.id = 2, .monitor = 2},
  };
  SyntheticNetwork net(radios);
  net.Data(5'000, 1, 1, {0, 1, 2});  // bootstrap reference
  SyntheticTx tx;
  tx.at = 20'000;
  tx.frame = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                      MacAddress::Ap(0), 2, Bytes{9, 9, 9}, PhyRate::kB2,
                      false, true);
  tx.heard_by = {0, 1};
  tx.corrupted_at = {2};
  net.Transmit(std::move(tx));
  auto traces = net.Build();

  MergeResult result = MergeTraces(traces);
  ASSERT_EQ(result.jframes.size(), 2u);
  const JFrame& jf = result.jframes[1];
  EXPECT_EQ(jf.InstanceCount(), 3u);
  EXPECT_EQ(jf.ValidInstanceCount(), 2u);
  EXPECT_EQ(result.stats.error_instances_attached, 1u);
}

TEST(Unifier, OrphanCorruptedEventDropped) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0},
      {.id = 1, .monitor = 1},
  };
  SyntheticNetwork net(radios);
  net.Data(5'000, 1, 1, {0, 1});
  SyntheticTx tx;
  tx.at = 20'000;
  tx.frame = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                      MacAddress::Ap(0), 2, Bytes{1}, PhyRate::kB2, false,
                      true);
  tx.corrupted_at = {0};  // corrupted everywhere it was heard
  net.Transmit(std::move(tx));
  auto traces = net.Build();
  MergeResult result = MergeTraces(traces);
  EXPECT_EQ(result.jframes.size(), 1u);
  EXPECT_EQ(result.stats.error_events_dropped, 1u);
}

TEST(Unifier, SkewCompensationKeepsDispersionTight) {
  // Two radios with +/-40 PPM skew over 60 seconds: without compensation
  // their clocks drift ~5 ms apart; continual resync + the skew EWMA must
  // keep late-trace dispersion in single-digit us.
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 0.0, .skew_ppm = 40.0},
      {.id = 1, .monitor = 1, .offset_us = 0.0, .skew_ppm = -40.0},
  };
  SyntheticNetwork net(radios);
  std::uint16_t seq = 1;
  for (TrueMicros t = 1000; t < Seconds(60); t += 50'000) {
    net.Data(t, 1, seq++ & 0x0FFF, {0, 1});
  }
  auto traces = net.Build();
  MergeResult result = MergeTraces(traces);
  // All unified (no lost pairings despite skew).
  std::size_t singletons = 0;
  Micros worst_late_dispersion = 0;
  for (std::size_t i = 0; i < result.jframes.size(); ++i) {
    if (result.jframes[i].InstanceCount() < 2) ++singletons;
    if (i > result.jframes.size() / 2) {
      worst_late_dispersion =
          std::max(worst_late_dispersion, result.jframes[i].dispersion);
    }
  }
  EXPECT_EQ(singletons, 0u);
  EXPECT_LE(worst_late_dispersion, 10);
  EXPECT_GT(result.stats.resyncs, 0u);
}

TEST(Unifier, AblationSkewCompensationOffDegrades) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .skew_ppm = 60.0},
      {.id = 1, .monitor = 1, .skew_ppm = -60.0},
  };
  SyntheticNetwork net(radios);
  std::uint16_t seq = 1;
  // Sparse traffic: 1 frame per second, so corrections are rare and skew
  // accumulates ~120 us between them.
  for (TrueMicros t = 1000; t < Seconds(30); t += Seconds(1)) {
    net.Data(t, 1, seq++ & 0x0FFF, {0, 1});
  }
  auto on_traces = net.Build();
  auto off_traces = net.Build();

  MergeConfig on_cfg, off_cfg;
  off_cfg.unifier.compensate_skew = false;
  const auto on = MergeTraces(on_traces, on_cfg);
  const auto off = MergeTraces(off_traces, off_cfg);

  const auto tail_dispersion = [](const MergeResult& r) {
    Micros worst = 0;
    for (std::size_t i = r.jframes.size() / 2; i < r.jframes.size(); ++i) {
      worst = std::max(worst, r.jframes[i].dispersion);
    }
    return worst;
  };
  EXPECT_LT(tail_dispersion(on), tail_dispersion(off));
}

TEST(Unifier, StatsAddUp) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0},
      {.id = 1, .monitor = 1},
  };
  SyntheticNetwork net(radios);
  for (std::uint16_t s = 1; s <= 20; ++s) {
    net.Data(s * 30'000, 1, s, s % 2 ? std::vector<RadioId>{0, 1}
                                     : std::vector<RadioId>{0});
  }
  auto traces = net.Build();
  MergeResult result = MergeTraces(traces);
  const auto& st = result.stats;
  EXPECT_EQ(st.events_in, st.valid_in + st.fcs_error_in + st.phy_error_in);
  EXPECT_EQ(st.events_in, 30u);  // 10 pairs + 10 singles
  EXPECT_EQ(st.jframes, 20u);
  EXPECT_EQ(st.events_unified, 30u);
  EXPECT_EQ(st.EventsPerJframe(), 1.5);
}

TEST(Pipeline, OutputStrictlyTimeOrdered) {
  Rng rng(3);
  std::vector<SyntheticRadio> radios;
  for (RadioId i = 0; i < 8; ++i) {
    radios.push_back(SyntheticRadio{
        .id = i, .monitor = i,
        .offset_us = static_cast<double>(rng.NextInt(-10'000, 10'000))});
  }
  SyntheticNetwork net(radios);
  std::uint16_t seq = 1;
  for (int k = 0; k < 200; ++k) {
    std::vector<RadioId> heard;
    const RadioId first = static_cast<RadioId>(rng.NextBelow(6));
    for (RadioId i = first; i < first + 3; ++i) heard.push_back(i);
    net.Data(1000 + k * 900, static_cast<std::uint16_t>(1 + k % 3),
             seq++ & 0x0FFF, heard);
  }
  auto traces = net.Build();
  const auto jframes = Merge(traces);
  for (std::size_t i = 1; i < jframes.size(); ++i) {
    EXPECT_LE(jframes[i - 1].timestamp, jframes[i].timestamp);
  }
}

TEST(Pipeline, StreamingMatchesBatch) {
  std::vector<SyntheticRadio> radios = {
      {.id = 0, .monitor = 0, .offset_us = 42.0},
      {.id = 1, .monitor = 1, .offset_us = -17.0},
  };
  SyntheticNetwork net(radios);
  for (std::uint16_t s = 1; s <= 30; ++s) {
    net.Data(s * 10'000, 1, s, {0, 1});
  }
  auto t1 = net.Build();
  auto t2 = net.Build();
  const auto batch = MergeTraces(t1);
  std::vector<JFrame> streamed;
  MergeTracesStreaming(t2, {}, [&](JFrame&& jf) {
    streamed.push_back(std::move(jf));
  });
  ASSERT_EQ(streamed.size(), batch.jframes.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].timestamp, batch.jframes[i].timestamp);
    EXPECT_EQ(streamed[i].digest, batch.jframes[i].digest);
  }
}

}  // namespace
}  // namespace jig
