// Live-ingest equivalence suite — the pin for the tail-follow trace layer
// (TailFileTrace / TraceSetWriter) and the resumable MergeSession.
//
// The central contract: a MergeSession tailing .jigt files *while they are
// being written* must emit, once every writer finalizes, a jframe stream
// byte-identical to a batch MergeTraces over the finished files — for every
// threading mode.  Around that pin: watermark behavior under starved and
// uneven sources (a lagging radio, an early-finalizing radio, a radio that
// joins after the others), bounded retention, and corruption robustness of
// the tail reader (clean errors, never a spin or a misread).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "jframe_equality.h"
#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "link_equality.h"
#include "synthetic.h"
#include "trace/tail_trace.h"
#include "trace/trace_set.h"
#include "util/compression.h"

namespace jig {
namespace {

namespace fs = std::filesystem;
using testing::ExpectEqualStats;
using testing::ExpectIdenticalStreams;
using testing::ExpectLinkIdentical;
using testing::MultiChannelNetwork;

// Per-radio record scripts extracted from a synthetic network, plus the
// cursor state of an incremental writer over them.
struct LiveScript {
  std::vector<TraceHeader> headers;
  std::vector<std::vector<CaptureRecord>> records;

  static LiveScript FromNetwork(TraceSet&& traces) {
    LiveScript script;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      auto& mem = dynamic_cast<MemoryTrace&>(traces.at(i));
      script.headers.push_back(mem.header());
      script.records.push_back(mem.records());
    }
    return script;
  }

  std::size_t size() const { return headers.size(); }
};

// Writes a prefix of each radio's script: radio i advances to
// `fraction[i]` of its records (monotonically; already-written records are
// skipped).  Returns via `cursor` state kept by the caller.
void AppendFractions(TraceSetWriter& writer, const LiveScript& script,
                     std::vector<std::size_t>& cursor,
                     const std::vector<double>& fraction) {
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto target = static_cast<std::size_t>(
        static_cast<double>(script.records[i].size()) * fraction[i]);
    while (cursor[i] < target) {
      writer.Append(i, script.records[i][cursor[i]++]);
    }
  }
  writer.Sync();
}

// Drives a MergeSession over tail-follow streams until kDone, collecting
// the stream.  `between_polls` (optional) runs after every poll — the
// hook the writer-thread test uses to assert liveness properties.
struct LiveRun {
  std::vector<JFrame> jframes;
  MergeStreamStats stats;
  std::size_t peak_retained = 0;
};

LiveRun RunLiveSession(const fs::path& dir, std::size_t radios,
                       unsigned threads) {
  LiveRun run;
  TraceSet traces = TraceSet::FollowDirectory(dir, radios);
  MergeConfig cfg;
  cfg.threads = threads;
  MergeSession session(traces, cfg, [&run](JFrame&& jf) {
    run.jframes.push_back(std::move(jf));
  });
  for (;;) {
    const auto status = session.Poll();
    if (status == MergeSession::Status::kDone) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  run.stats.bootstrap = session.bootstrap();
  run.stats.stats = session.stats();
  run.peak_retained = session.peak_retained_jframes();
  return run;
}

MergeResult BatchMerge(const fs::path& dir, unsigned threads = 1) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  MergeConfig cfg;
  cfg.threads = threads;
  return MergeTraces(traces, cfg);
}

class LiveIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("live_ingest_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// The tentpole pin: writer thread appends in timed chunks while the
// session tails; the final stream must be byte-identical to the batch
// merge of the finished files, across threads in {1, 2, auto}.

class LiveVsBatch : public LiveIngestTest,
                    public ::testing::WithParamInterface<unsigned> {};

TEST_P(LiveVsBatch, ByteIdenticalToBatchOfFinishedFiles) {
  const unsigned threads = GetParam();
  auto script = LiveScript::FromNetwork(MultiChannelNetwork(21).Build());
  const std::size_t n = script.size();

  std::thread writer_thread([&] {
    TraceSetWriter writer(dir_);
    for (std::size_t i = 0; i < n; ++i) {
      // Small blocks so many blocks land mid-flight, not just at Sync.
      writer.AddRadio(script.headers[i], /*records_per_block=*/64);
    }
    std::vector<std::size_t> cursor(n, 0);
    constexpr int kChunks = 16;
    for (int chunk = 1; chunk <= kChunks; ++chunk) {
      AppendFractions(writer, script, cursor,
                      std::vector<double>(
                          n, static_cast<double>(chunk) / kChunks));
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
    writer.FinalizeAll();
  });

  const LiveRun live = RunLiveSession(dir_, n, threads);
  writer_thread.join();

  const MergeResult batch = BatchMerge(dir_);  // threads=1 legacy reference
  ASSERT_GT(batch.jframes.size(), 100u);
  ExpectIdenticalStreams(live.jframes, batch.jframes);
  ExpectEqualStats(live.stats.stats, batch.stats);
  ASSERT_EQ(live.stats.bootstrap.synced.size(),
            batch.bootstrap.synced.size());
  for (std::size_t i = 0; i < batch.bootstrap.synced.size(); ++i) {
    EXPECT_EQ(live.stats.bootstrap.synced[i], batch.bootstrap.synced[i]);
    EXPECT_DOUBLE_EQ(live.stats.bootstrap.offset_us[i],
                     batch.bootstrap.offset_us[i]);
  }

  // The equality extends through the link layer (reusing the
  // link_equality.h comparators): reconstructions over the two streams
  // must match field for field.
  ExpectLinkIdentical(ReconstructLink(live.jframes),
                      ReconstructLink(batch.jframes));
}

INSTANTIATE_TEST_SUITE_P(Threads, LiveVsBatch,
                         ::testing::Values(1u, 2u, 0u));

// ---------------------------------------------------------------------------
// Starved / uneven sources.

// One radio lags seconds of capture time behind the rest: the merge must
// stall at the laggard's watermark — no jframe may be emitted that a later
// record of the laggard could still have joined — and buffering must stay
// bounded while stalled.
TEST_F(LiveIngestTest, LaggingRadioStallsWatermarkWithoutPrematureEmission) {
  auto script = LiveScript::FromNetwork(MultiChannelNetwork(33).Build());
  const std::size_t n = script.size();
  constexpr std::size_t kLaggard = 0;  // channel 1, shared with radio 5

  TraceSetWriter writer(dir_);
  for (std::size_t i = 0; i < n; ++i) writer.AddRadio(script.headers[i]);
  std::vector<std::size_t> cursor(n, 0);

  // Everyone else writes everything; the laggard stops at 40%.
  std::vector<double> fraction(n, 1.0);
  fraction[kLaggard] = 0.4;
  AppendFractions(writer, script, cursor, fraction);

  TraceSet traces = TraceSet::FollowDirectory(dir_, n);
  MergeConfig cfg;
  cfg.threads = 2;
  std::vector<JFrame> streamed;
  MergeSession session(traces, cfg, [&](JFrame&& jf) {
    streamed.push_back(std::move(jf));
  });

  // Poll to quiescence: the session must report starvation, not completion.
  MergeSession::Status status = session.Poll();
  status = session.Poll();  // second poll: no writer activity in between
  EXPECT_EQ(status, MergeSession::Status::kStarved);

  // No premature emission: every emitted jframe must predate the point the
  // laggard's next record could reach.  Its clock offset is bounded by a
  // few ms and the pipeline adds at most the reorder horizon.
  const auto& lag_records = script.records[kLaggard];
  const LocalMicros lag_frontier = lag_records[cursor[kLaggard] - 1].timestamp;
  const UniversalMicros bound =
      static_cast<UniversalMicros>(lag_frontier) + 100'000;  // 100 ms slack
  for (const JFrame& jf : streamed) {
    ASSERT_LE(jf.timestamp, bound)
        << "jframe emitted past the lagging radio's watermark";
  }
  const std::size_t stalled_count = streamed.size();

  // Bounded retention while stalled: the non-lagging shards throttle at
  // the per-shard watermark instead of buffering their whole backlog.
  EXPECT_LE(session.retained_jframes(),
            3 * (kMergeQueueWatermark + 2048));

  // The laggard catches up and finalizes: the session completes and the
  // full stream equals the batch merge — the stall lost nothing.
  AppendFractions(writer, script, cursor, std::vector<double>(n, 1.0));
  writer.FinalizeAll();
  for (;;) {
    if (session.Poll() == MergeSession::Status::kDone) break;
  }
  EXPECT_GT(streamed.size(), stalled_count);

  // Completion hands the streams back to the caller's TraceSet even while
  // the session object (and its stats) are still alive.
  ASSERT_EQ(traces.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(traces.at(i).header().radio, script.headers[i].radio);
  }

  const MergeResult batch = BatchMerge(dir_);
  ExpectIdenticalStreams(streamed, batch.jframes);
}

// One radio finalizes early (half its capture): the merge must NOT stall
// on it — the finalize marker releases the watermark — and the result
// still equals the batch merge of the same files.
TEST_F(LiveIngestTest, EarlyFinalizingRadioReleasesWatermark) {
  auto script = LiveScript::FromNetwork(MultiChannelNetwork(44).Build());
  const std::size_t n = script.size();
  constexpr std::size_t kEarly = 3;  // channel 11

  TraceSetWriter writer(dir_);
  for (std::size_t i = 0; i < n; ++i) writer.AddRadio(script.headers[i]);
  std::vector<std::size_t> cursor(n, 0);

  // The early radio writes half of its records and finalizes immediately.
  std::vector<double> fraction(n, 0.25);
  fraction[kEarly] = 0.5;
  AppendFractions(writer, script, cursor, fraction);
  writer.Finalize(kEarly);

  TraceSet traces = TraceSet::FollowDirectory(dir_, n);
  MergeConfig cfg;
  cfg.threads = 2;
  std::vector<JFrame> streamed;
  MergeSession session(traces, cfg, [&](JFrame&& jf) {
    streamed.push_back(std::move(jf));
  });

  // Feed the rest in stepped chunks, polling in between: progress must
  // continue past the early radio's end-of-capture.
  for (double f : {0.5, 0.75, 1.0}) {
    session.Poll();
    std::vector<double> step(n, f);
    step[kEarly] = 0.5;  // finalized: nothing more may be appended
    AppendFractions(writer, script, cursor, step);
  }
  writer.FinalizeAll();
  for (;;) {
    if (session.Poll() == MergeSession::Status::kDone) break;
  }

  const MergeResult batch = BatchMerge(dir_);
  ASSERT_GT(batch.jframes.size(), 100u);
  ExpectIdenticalStreams(streamed, batch.jframes);
  ExpectEqualStats(session.stats(), batch.stats);
}

// A radio "joins" late: its file exists (header only) but carries no data
// until long after the others are fully written.  The session must hold in
// the bootstrap phase — zero emission, zero retention (the files are the
// buffer) — then bootstrap late and re-emit the stream from offset zero.
TEST_F(LiveIngestTest, LateJoiningRadioDefersBootstrapThenReplaysFromZero) {
  auto script = LiveScript::FromNetwork(MultiChannelNetwork(55).Build());
  const std::size_t n = script.size();
  constexpr std::size_t kLate = 1;  // channel 6

  TraceSetWriter writer(dir_);
  for (std::size_t i = 0; i < n; ++i) writer.AddRadio(script.headers[i]);
  std::vector<std::size_t> cursor(n, 0);

  std::vector<double> fraction(n, 1.0);
  fraction[kLate] = 0.0;  // header exists, no records yet
  AppendFractions(writer, script, cursor, fraction);

  TraceSet traces = TraceSet::FollowDirectory(dir_, n);
  MergeConfig cfg;
  cfg.threads = 0;
  std::size_t emitted = 0;
  std::vector<JFrame> streamed;
  MergeSession session(traces, cfg, [&](JFrame&& jf) {
    ++emitted;
    streamed.push_back(std::move(jf));
  });

  // No premature emission, ever: until the late radio's sync window fills,
  // the session stays in bootstrap and buffers nothing.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(session.Poll(), MergeSession::Status::kBootstrapping);
    EXPECT_EQ(emitted, 0u);
    EXPECT_EQ(session.retained_jframes(), 0u);
    EXPECT_FALSE(session.bootstrapped());
  }

  // The radio joins: data arrives and the writers finalize.  The session
  // bootstraps (late) and replays the merged stream from offset zero.
  AppendFractions(writer, script, cursor, std::vector<double>(n, 1.0));
  writer.FinalizeAll();
  for (;;) {
    if (session.Poll() == MergeSession::Status::kDone) break;
  }
  EXPECT_TRUE(session.bootstrapped());

  const MergeResult batch = BatchMerge(dir_);
  ASSERT_GT(batch.jframes.size(), 100u);
  ExpectIdenticalStreams(streamed, batch.jframes);
  // The late radio must have been synchronized, not dropped.
  EXPECT_TRUE(session.bootstrap().synced[kLate]);
}

// ---------------------------------------------------------------------------
// Tail-reader robustness: partial writes re-poll, the finalize marker ends
// the stream, and corruption surfaces as a clean error instead of a spin.

TEST_F(LiveIngestTest, PartialTrailingBlockIsNoDataYetNotEofOrCorruption) {
  const auto path = dir_ / "r7.jigt";
  TraceHeader header;
  header.radio = 7;

  // One published block of two records.
  CaptureRecord rec;
  rec.timestamp = 1'000;
  rec.rate = PhyRate::kB2;
  rec.bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  rec.orig_len = 14;
  {
    TraceFileWriter writer(path, header);
    writer.Append(rec);
    rec.timestamp = 2'000;
    writer.Append(rec);
    writer.Sync();

    auto tail = TailFileTrace::TryOpen(path);
    ASSERT_NE(tail, nullptr);
    EXPECT_EQ(tail->header().radio, 7);
    EXPECT_EQ(tail->Next()->timestamp, 1'000);
    EXPECT_EQ(tail->Next()->timestamp, 2'000);
    // Frontier reached mid-capture: no data yet, expressly NOT finalized.
    EXPECT_FALSE(tail->Next().has_value());
    EXPECT_FALSE(tail->Finalized());

    // A third record, but published only partially: first the length word
    // plus half the block body, by hand.
    rec.timestamp = 3'000;
    Bytes serialized;
    SerializeRecord(rec, 0, serialized);
    const Bytes packed = LzCompress(serialized);
    std::FILE* raw = std::fopen(path.string().c_str(), "ab");
    ASSERT_NE(raw, nullptr);
    const std::uint32_t len = static_cast<std::uint32_t>(packed.size());
    const std::uint8_t len_buf[4] = {
        static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 24)};
    std::fwrite(len_buf, 1, 4, raw);
    std::fwrite(packed.data(), 1, packed.size() / 2, raw);
    std::fflush(raw);

    // Still "no data yet": the half-written block must not read as EOF,
    // corruption, or (worst) a garbled record.
    EXPECT_FALSE(tail->Next().has_value());
    EXPECT_FALSE(tail->Finalized());

    // The writer completes the block: the record appears on re-poll.
    std::fwrite(packed.data() + packed.size() / 2,
                1, packed.size() - packed.size() / 2, raw);
    std::fflush(raw);
    const auto got = tail->Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->timestamp, 3'000);
    EXPECT_EQ(got->bytes, rec.bytes);
    EXPECT_FALSE(tail->Next().has_value());
    EXPECT_FALSE(tail->Finalized());

    // The explicit finalize marker ([u32 0]) ends the stream for good.
    const std::uint8_t terminator[4] = {0, 0, 0, 0};
    std::fwrite(terminator, 1, 4, raw);
    std::fflush(raw);
    std::fclose(raw);
    EXPECT_FALSE(tail->Next().has_value());
    EXPECT_TRUE(tail->Finalized());

    // Rewind replays the whole trace (the re-emit-from-zero path).
    tail->Rewind();
    EXPECT_EQ(tail->Next()->timestamp, 1'000);
    EXPECT_EQ(tail->Next()->timestamp, 2'000);
    EXPECT_EQ(tail->Next()->timestamp, 3'000);
  }
}

TEST_F(LiveIngestTest, BadMagicSurfacesCorruptionNotRetry) {
  const auto path = dir_ / "bad.jigt";
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  std::fwrite("NOTJIGSAW AT ALL", 1, 16, f);
  std::fclose(f);
  EXPECT_THROW(TailFileTrace::TryOpen(path), TraceCorruptError);
}

TEST_F(LiveIngestTest, TruncatedHeaderIsNotYetOpenableWithoutSpinOrThrow) {
  const auto path = dir_ / "r1.jigt";
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  std::fwrite("JIGT\x01\x00\x00\x00", 1, 8, f);  // magic+version, no header
  std::fclose(f);
  // Not corrupt, not readable: simply "try again later".
  EXPECT_EQ(TailFileTrace::TryOpen(path), nullptr);
}

TEST_F(LiveIngestTest, GarbageBlockLengthSurfacesCleanCorruptionError) {
  // Handcraft header + one valid block + an absurd block length word (what
  // a scribbled-on or bit-flipped capture looks like mid-stream).
  const auto path = dir_ / "r2.jigt";
  TraceHeader header;
  header.radio = 2;
  Bytes hdr;
  SerializeHeader(header, hdr);
  CaptureRecord rec;
  rec.timestamp = 500;
  rec.bytes = {1, 2, 3, 4};
  rec.orig_len = 4;
  Bytes serialized;
  SerializeRecord(rec, 0, serialized);
  const Bytes packed = LzCompress(serialized);

  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const auto put_u32 = [f](std::uint32_t v) {
    const std::uint8_t buf[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 24)};
    std::fwrite(buf, 1, 4, f);
  };
  std::fwrite(kTraceDataMagic, 1, 4, f);
  put_u32(kTraceVersion);
  put_u32(static_cast<std::uint32_t>(hdr.size()));
  std::fwrite(hdr.data(), 1, hdr.size(), f);
  put_u32(static_cast<std::uint32_t>(packed.size()));
  std::fwrite(packed.data(), 1, packed.size(), f);
  put_u32(0x7FFFFFFF);  // garbage block length
  std::fclose(f);

  auto tail = TailFileTrace::TryOpen(path);
  ASSERT_NE(tail, nullptr);
  ASSERT_TRUE(tail->Next().has_value());  // the valid record still reads
  // ... but the garbage length is a clean, non-retryable error.
  EXPECT_THROW(tail->Next(), TraceCorruptError);
}

}  // namespace
}  // namespace jig
