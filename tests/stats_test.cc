#include "util/stats.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

TEST(Distribution, EmptyBehaviour) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.Quantile(0.5), 0.0);
  EXPECT_EQ(d.CdfAt(1.0), 0.0);
  EXPECT_TRUE(d.CdfSeries(10).empty());
}

TEST(Distribution, QuantilesOfKnownData) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  EXPECT_DOUBLE_EQ(d.Max(), 100.0);
  EXPECT_NEAR(d.Quantile(0.5), 50.5, 0.01);
  EXPECT_NEAR(d.Quantile(0.9), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 100.0);
}

TEST(Distribution, MeanAndStddev) {
  Distribution d;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.Add(v);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_NEAR(d.Stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Distribution, CdfAt) {
  Distribution d;
  for (int i = 1; i <= 10; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(5.0), 0.5);
  EXPECT_DOUBLE_EQ(d.CdfAt(10.0), 1.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(100.0), 1.0);
}

TEST(Distribution, CdfSeriesMonotone) {
  Distribution d;
  for (int i = 0; i < 500; ++i) d.Add((i * 37) % 101);
  const auto series = d.CdfSeries(25);
  ASSERT_EQ(series.size(), 25u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Distribution, AddNRepeats) {
  Distribution d;
  d.AddN(3.0, 5);
  d.Add(10.0);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 3.0);
}

TEST(Distribution, InterleavedAddAndQuery) {
  Distribution d;
  d.Add(5.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 5.0);
  d.Add(1.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.5, 99.0);
  EXPECT_DOUBLE_EQ(e.Value(), 99.0);
  EXPECT_FALSE(e.seeded());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 10.0);
  EXPECT_TRUE(e.seeded());
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Add(42.0);
  EXPECT_NEAR(e.Value(), 42.0, 1e-9);
}

TEST(Ewma, WeightsNewSamples) {
  Ewma e(0.25);
  e.Add(0.0);
  e.Add(100.0);
  EXPECT_DOUBLE_EQ(e.Value(), 25.0);
}

TEST(TimeBins, BinsAndBounds) {
  TimeBins bins(Seconds(1), Seconds(10));
  EXPECT_EQ(bins.BinCount(), 10u);
  bins.Add(0, 1.0);
  bins.Add(Seconds(1) - 1, 2.0);
  bins.Add(Seconds(1), 4.0);
  bins.Add(Seconds(10) + 5, 100.0);  // out of range: dropped
  bins.Add(-5, 100.0);               // negative: dropped
  EXPECT_DOUBLE_EQ(bins.BinValue(0), 3.0);
  EXPECT_DOUBLE_EQ(bins.BinValue(1), 4.0);
  EXPECT_EQ(bins.BinStart(3), Seconds(3));
}

TEST(TimeBins, RejectsBadArguments) {
  EXPECT_THROW(TimeBins(0, Seconds(1)), std::invalid_argument);
  EXPECT_THROW(TimeBins(Seconds(1), 0), std::invalid_argument);
}

TEST(Format, Fixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
}

TEST(Format, Percent) {
  EXPECT_EQ(FormatPercent(0.4567), "45.7%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(Format, CountSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace jig
