// Quickstart: simulate a small monitored WLAN, merge the monitor traces
// into jframes, and walk the unified timeline.
//
// This is the smallest end-to-end tour of the public API:
//   1. Scenario      — build and run a simulated deployment (the substrate
//                      standing in for a real building).
//   2. TraceSet      — per-radio capture traces, optionally written to and
//                      reloaded from jigdump-style .jigt files.
//   3. MergeTraces   — bootstrap synchronization + frame unification.
//   4. ReconstructLink / ReconstructTransport — conversations from frames.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/tcp_reconstruct.h"
#include "sim/scenario.h"

int main() {
  using namespace jig;

  // 1. A small deployment: default building, fewer clients, 10 seconds.
  ScenarioConfig config;
  config.seed = 1;
  config.duration = Seconds(10);
  config.clients = 16;
  Scenario scenario(config);
  std::printf("deployment: %zu pods, %zu APs, %zu clients\n",
              scenario.pod_info().size(), scenario.ap_count(),
              scenario.client_count());
  scenario.Run();

  // 2. Harvest one capture trace per radio.
  TraceSet traces = scenario.TakeTraces();
  std::printf("captured %zu radio traces\n", traces.size());

  // 3. Merge: one synchronized global timeline.
  const MergeResult merged = MergeTraces(traces);
  std::printf("bootstrap: %zu/%zu radios synchronized (BFS depth %d)\n",
              merged.bootstrap.SyncedCount(), merged.bootstrap.synced.size(),
              merged.bootstrap.max_bfs_depth);
  std::printf("unified %llu events into %llu jframes "
              "(%.2f observations per transmission)\n",
              static_cast<unsigned long long>(merged.stats.events_unified),
              static_cast<unsigned long long>(merged.stats.jframes),
              merged.stats.EventsPerJframe());

  // A taste of the unified timeline: the first few frames on the air.
  std::printf("\nfirst 10 jframes:\n");
  for (std::size_t i = 0; i < merged.jframes.size() && i < 10; ++i) {
    const JFrame& jf = merged.jframes[i];
    std::printf("  t=%9lld us  %-28s heard by %zu radios (dispersion %lld us)\n",
                static_cast<long long>(jf.timestamp - merged.jframes[0].timestamp),
                jf.frame.Summary().c_str(), jf.InstanceCount(),
                static_cast<long long>(jf.dispersion));
  }

  // 4. Reconstruct conversations.
  const LinkReconstruction link = ReconstructLink(merged.jframes);
  const TransportReconstruction transport =
      ReconstructTransport(merged.jframes, link);
  std::printf("\nlink layer: %zu transmission attempts -> %zu frame "
              "exchanges (%.2f%% needed inference)\n",
              link.attempts.size(), link.exchanges.size(),
              100.0 * link.stats.ExchangeInferenceRate());
  std::printf("transport: %zu TCP flows, %llu with completed handshakes\n",
              transport.flows.size(),
              static_cast<unsigned long long>(
                  transport.stats.flows_with_handshake));
  return 0;
}
