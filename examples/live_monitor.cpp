// Live monitor: streaming merge feeding per-second network statistics.
//
// Demonstrates the online path the paper's architecture was built for:
// MergeTracesStreaming delivers time-ordered jframes as the single-pass
// merge produces them (no trace-sized buffering) — here with the
// channel-sharded parallel merge, so the pipeline keeps up with deployments
// far larger than one core could serve — and the AnalysisBus fans the
// stream out to the OnlineMonitor (windowed health stats — activity,
// traffic mix, utilization, synchronization quality — exactly what a NOC
// dashboard would poll) and a dispersion CDF, all in the same pass.
//
// Usage: ./build/examples/live_monitor [seconds] [threads]
#include <cstdio>
#include <cstdlib>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  const Micros duration = Seconds(argc > 1 ? std::atol(argv[1]) : 15);
  const auto threads =
      static_cast<unsigned>(argc > 2 ? std::atol(argv[2]) : 0);

  ScenarioConfig config;
  config.seed = 6;
  config.duration = duration;
  config.clients = 28;
  config.workload.web_per_min = 4.0;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();

  std::printf("  %8s %8s %7s %7s %7s %8s %8s %7s %7s %9s\n", "window",
              "jframes", "data", "mgmt", "ctrl", "clients", "APs", "util",
              "bcast", "sync-disp");

  UniversalMicros origin = 0;
  AnalysisBus bus;
  auto& online = bus.Emplace<OnlineMonitorConsumer>(
      Seconds(1), [&](const OnlineWindowStats& w) {
        if (origin == 0) origin = w.window_start;
        std::printf("  %6llds %8llu %7llu %7llu %7llu %8d %8d %6.1f%% "
                    "%6.1f%% %7lldus\n",
                    static_cast<long long>((w.window_start - origin) /
                                           kMicrosPerSecond),
                    static_cast<unsigned long long>(w.jframes),
                    static_cast<unsigned long long>(w.data_frames),
                    static_cast<unsigned long long>(w.mgmt_frames),
                    static_cast<unsigned long long>(w.ctrl_frames),
                    w.active_clients, w.active_aps,
                    100.0 * w.airtime_fraction,
                    100.0 * w.broadcast_airtime_fraction,
                    static_cast<long long>(w.worst_dispersion));
      });
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  // Link + TCP-loss health ride the windowed reconstructor in the same
  // pass: exactly what a NOC would alarm on, still with no trace-sized
  // buffer (peak jframe retention is bounded by the 500 ms exchange
  // timeout).
  auto& link = bus.Emplace<LinkConsumer>();
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);

  // The streaming path: no jframe vector is ever materialized.
  MergeConfig mcfg;
  mcfg.threads = threads;
  const auto stats = MergeTracesStreaming(traces, mcfg, bus.Sink());
  bus.Finish();

  std::printf("\n%llu windows; merged %llu events one-pass "
              "(%zu/%zu radios synced); sync p90 %.0f us over %llu "
              "multi-instance jframes\n",
              static_cast<unsigned long long>(
                  online.monitor().windows_emitted()),
              static_cast<unsigned long long>(stats.stats.events_in),
              stats.bootstrap.SyncedCount(), stats.bootstrap.synced.size(),
              dispersion.distribution().empty()
                  ? 0.0
                  : dispersion.distribution().Quantile(0.90),
              static_cast<unsigned long long>(
                  dispersion.distribution().size()));
  std::printf("link health: %llu exchanges (%.2f%% inferred); TCP loss "
              "%.4f over %llu flows (%.4f wireless); peak window %zu "
              "jframes\n",
              static_cast<unsigned long long>(link.stats().exchanges),
              100.0 * link.stats().ExchangeInferenceRate(),
              tcp_loss.report().aggregate_loss_rate,
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_wireless_rate,
              link.peak_window_jframes());
  return 0;
}
