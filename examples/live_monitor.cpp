// Live monitor: streaming merge feeding per-second network statistics.
//
// Demonstrates the online path the paper's architecture was built for:
// MergeTracesStreaming delivers time-ordered jframes as the single-pass
// merge produces them (no trace-sized buffering) — here with the
// channel-sharded parallel merge, so the pipeline keeps up with deployments
// far larger than one core could serve — and the AnalysisBus fans the
// stream out to the OnlineMonitor (windowed health stats — activity,
// traffic mix, utilization, synchronization quality — exactly what a NOC
// dashboard would poll) and a dispersion CDF, all in the same pass.
//
// With --follow the monitor runs against radios that are *still capturing*:
// it tails the .jigt files in a directory (e.g. one being filled by
// `jigtool demo-live`), drives a resumable MergeSession as the files grow,
// and prints periodic Figure 9 (interference) / Figure 11 (TCP loss)
// snapshots until every writer finalizes.
//
// --metrics-interval <s> dumps the pipeline metric registry (Prometheus
// text format, see docs/OBSERVABILITY.md) every s seconds while following.
//
// Usage: ./build/examples/live_monitor [seconds] [threads]
//        ./build/examples/live_monitor --follow <dir> [radios] [threads]
//            [--spill-dir <sdir>] [--metrics-interval <s>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/pipeline.h"
#include "obs/export.h"
#include "sim/scenario.h"

namespace {

using namespace jig;

void PrintHeader() {
  std::printf("  %8s %8s %7s %7s %7s %8s %8s %7s %7s %9s\n", "window",
              "jframes", "data", "mgmt", "ctrl", "clients", "APs", "util",
              "bcast", "sync-disp");
}

// Wall-clock HH:MM:SS for snapshot headers — a live dashboard line is only
// interpretable if you can tell *when* it was true.
std::string WallClockNow() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::strftime(buf, sizeof buf, "%H:%M:%S", &tm_buf);
  return buf;
}

int RunFollow(const char* dir, std::size_t radios, unsigned threads,
              const char* spill_dir, long metrics_interval_s) {
  std::printf("following %s ...\n", dir);
  TraceSet traces = TraceSet::FollowDirectory(dir, radios);
  std::printf("tailing %zu traces\n", traces.size());
  PrintHeader();

  UniversalMicros origin = 0;
  AnalysisBus bus;
  bus.Emplace<OnlineMonitorConsumer>(
      Seconds(1), [&](const OnlineWindowStats& w) {
        if (origin == 0) origin = w.window_start;
        std::printf("  %6llds %8llu %7llu %7llu %7llu %8d %8d %6.1f%% "
                    "%6.1f%% %7lldus\n",
                    static_cast<long long>((w.window_start - origin) /
                                           kMicrosPerSecond),
                    static_cast<unsigned long long>(w.jframes),
                    static_cast<unsigned long long>(w.data_frames),
                    static_cast<unsigned long long>(w.mgmt_frames),
                    static_cast<unsigned long long>(w.ctrl_frames),
                    w.active_clients, w.active_aps,
                    100.0 * w.airtime_fraction,
                    100.0 * w.broadcast_airtime_fraction,
                    static_cast<long long>(w.worst_dispersion));
      });
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);

  MergeConfig mcfg;
  mcfg.threads = threads;
  // A paused dashboard (this process stopped in a debugger, a terminal
  // holding output...) must not stall the capture side: shard backlog
  // spills to disk instead of throttling at the queue watermark.
  if (spill_dir != nullptr) mcfg.spill_dir = spill_dir;
  MergeSession session(traces, mcfg, bus.Sink());

  const auto snapshot = [&](const char* tag) {
    const auto fig9 = interference.SnapshotReport();
    const auto fig11 = tcp_loss.SnapshotReport();
    std::printf("  [%s %s lag %lldus] fig9: %zu (s,r) pairs (%.1f%% "
                "interfered) | fig11: %llu flows, loss %.4f (%.4f wireless) "
                "| %llu jframes, %zu retained\n",
                tag, WallClockNow().c_str(),
                static_cast<long long>(session.live_lag_us()),
                fig9.pairs.size(), 100.0 * fig9.fraction_pairs_interfered,
                static_cast<unsigned long long>(fig11.flows_considered),
                fig11.aggregate_loss_rate, fig11.aggregate_wireless_rate,
                static_cast<unsigned long long>(session.jframes_emitted()),
                session.retained_jframes());
  };
  const auto dump_metrics = [&] {
    std::printf("%s\n",
                obs::ToPrometheusText(session.MetricsSnapshot()).c_str());
  };

  auto last_snapshot = std::chrono::steady_clock::now();
  auto last_metrics = last_snapshot;
  for (;;) {
    const auto status = session.Poll();
    if (status == MergeSession::Status::kDone) break;
    const auto now = std::chrono::steady_clock::now();
    if (session.bootstrapped() &&
        now - last_snapshot >= std::chrono::seconds(1)) {
      snapshot("live");
      last_snapshot = now;
    }
    if (metrics_interval_s > 0 &&
        now - last_metrics >= std::chrono::seconds(metrics_interval_s)) {
      dump_metrics();
      last_metrics = now;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bus.Finish();
  snapshot("final");
  if (metrics_interval_s > 0) dump_metrics();
  const auto stats = session.stats();
  std::printf("done: merged %llu events into %llu jframes "
              "(%zu/%zu radios synced, peak retention %zu jframes, "
              "%llu spilled)\n",
              static_cast<unsigned long long>(stats.events_in),
              static_cast<unsigned long long>(stats.jframes),
              session.bootstrap().SyncedCount(),
              session.bootstrap().synced.size(),
              session.peak_retained_jframes(),
              static_cast<unsigned long long>(session.spilled_jframes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jig;
  if (argc > 1 && std::strcmp(argv[1], "--follow") == 0) {
    const char* spill_dir = nullptr;
    long metrics_interval_s = 0;
    std::vector<const char*> pos;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--spill-dir") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--spill-dir needs a directory argument\n");
          return 2;
        }
        spill_dir = argv[++i];
        continue;
      }
      if (std::strcmp(argv[i], "--metrics-interval") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "--metrics-interval needs a seconds argument\n");
          return 2;
        }
        metrics_interval_s = std::atol(argv[++i]);
        continue;
      }
      pos.push_back(argv[i]);
    }
    if (pos.empty()) {
      std::fprintf(stderr,
                   "usage: live_monitor --follow <trace_dir> [radios] "
                   "[threads] [--spill-dir <sdir>] "
                   "[--metrics-interval <s>]\n");
      return 2;
    }
    return RunFollow(pos[0],
                     pos.size() > 1
                         ? static_cast<std::size_t>(std::atol(pos[1]))
                         : 0,
                     static_cast<unsigned>(
                         pos.size() > 2 ? std::atol(pos[2]) : 0),
                     spill_dir, metrics_interval_s);
  }
  const Micros duration = Seconds(argc > 1 ? std::atol(argv[1]) : 15);
  const auto threads =
      static_cast<unsigned>(argc > 2 ? std::atol(argv[2]) : 0);

  ScenarioConfig config;
  config.seed = 6;
  config.duration = duration;
  config.clients = 28;
  config.workload.web_per_min = 4.0;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();

  PrintHeader();

  UniversalMicros origin = 0;
  AnalysisBus bus;
  auto& online = bus.Emplace<OnlineMonitorConsumer>(
      Seconds(1), [&](const OnlineWindowStats& w) {
        if (origin == 0) origin = w.window_start;
        std::printf("  %6llds %8llu %7llu %7llu %7llu %8d %8d %6.1f%% "
                    "%6.1f%% %7lldus\n",
                    static_cast<long long>((w.window_start - origin) /
                                           kMicrosPerSecond),
                    static_cast<unsigned long long>(w.jframes),
                    static_cast<unsigned long long>(w.data_frames),
                    static_cast<unsigned long long>(w.mgmt_frames),
                    static_cast<unsigned long long>(w.ctrl_frames),
                    w.active_clients, w.active_aps,
                    100.0 * w.airtime_fraction,
                    100.0 * w.broadcast_airtime_fraction,
                    static_cast<long long>(w.worst_dispersion));
      });
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  // Link + TCP-loss health ride the windowed reconstructor in the same
  // pass: exactly what a NOC would alarm on, still with no trace-sized
  // buffer (peak jframe retention is bounded by the 500 ms exchange
  // timeout).
  auto& link = bus.Emplace<LinkConsumer>();
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);

  // The streaming path: no jframe vector is ever materialized.
  MergeConfig mcfg;
  mcfg.threads = threads;
  const auto stats = MergeTracesStreaming(traces, mcfg, bus.Sink());
  bus.Finish();

  std::printf("\n%llu windows; merged %llu events one-pass "
              "(%zu/%zu radios synced); sync p90 %.0f us over %llu "
              "multi-instance jframes\n",
              static_cast<unsigned long long>(
                  online.monitor().windows_emitted()),
              static_cast<unsigned long long>(stats.stats.events_in),
              stats.bootstrap.SyncedCount(), stats.bootstrap.synced.size(),
              dispersion.distribution().empty()
                  ? 0.0
                  : dispersion.distribution().Quantile(0.90),
              static_cast<unsigned long long>(
                  dispersion.distribution().size()));
  std::printf("link health: %llu exchanges (%.2f%% inferred); TCP loss "
              "%.4f over %llu flows (%.4f wireless); peak window %zu "
              "jframes\n",
              static_cast<unsigned long long>(link.stats().exchanges),
              100.0 * link.stats().ExchangeInferenceRate(),
              tcp_loss.report().aggregate_loss_rate,
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_wireless_rate,
              link.peak_window_jframes());
  return 0;
}
