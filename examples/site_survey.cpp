// Site survey: the paper's Section 6 laptop-oracle methodology as a tool.
//
// A survey laptop roams through sampled locations — three per wing per
// floor, exactly the paper's plan — generating traffic at each stop while
// the monitoring platform listens.  Comparing the laptop's own link-level
// events (ground truth) with what the platform captured yields per-location
// coverage: the map of where your monitor deployment is deaf.
//
// Usage: ./build/examples/site_survey [dwell_seconds_per_stop]
#include <cstdio>
#include <cstdlib>

#include "jigsaw/analysis/coverage.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  const Micros dwell = Seconds(argc > 1 ? std::atol(argv[1]) : 4);

  ScenarioConfig config;
  config.seed = 8;
  config.clients = 17;  // client 16 is the survey laptop
  const std::size_t laptop = 16;
  config.workload.web_per_min = 3.0;

  // Survey plan: three stops per wing (left/right halves) per floor.
  const BuildingModel& b = config.building;
  std::vector<Point3> stops;
  for (int floor = 0; floor < b.floors; ++floor) {
    for (double wing : {0.0, 0.5}) {
      for (double along : {0.1, 0.25, 0.4}) {
        stops.push_back(Point3{b.length_m * (wing + along),
                               floor % 2 ? 8.0 : 32.0,
                               floor * b.floor_height_m + 1.0});
      }
    }
  }
  config.duration = dwell * static_cast<Micros>(stops.size());

  Scenario scenario(config);
  // Schedule the walk: teleport + re-associate at each stop boundary.
  struct StopTruthRange {
    Point3 pos;
    std::size_t truth_begin = 0;
  };
  std::vector<StopTruthRange> ranges;
  for (std::size_t s = 0; s < stops.size(); ++s) {
    scenario.events().Schedule(
        static_cast<TrueMicros>(s) * dwell, [&scenario, &ranges, &stops, s,
                                             laptop] {
          ranges.push_back({stops[s], scenario.truth().size()});
          scenario.RoamClient(laptop, stops[s]);
        });
  }
  scenario.Run();

  const MacAddress laptop_mac = scenario.client(laptop).address();
  std::printf("survey laptop %s visited %zu stops (%lld s dwell)\n\n",
              laptop_mac.ToString().c_str(), stops.size(),
              static_cast<long long>(ToSeconds(dwell)));
  std::printf("  %5s %6s %6s %6s | %8s %9s %9s\n", "stop", "x", "y", "floor",
              "events", "captured", "coverage");

  const auto& truth = scenario.truth().entries();
  double total_events = 0, total_heard = 0;
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    const std::size_t begin = ranges[s].truth_begin;
    const std::size_t end =
        s + 1 < ranges.size() ? ranges[s + 1].truth_begin : truth.size();
    std::uint64_t events = 0, heard = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (truth[i].transmitter != laptop_mac) continue;
      ++events;
      if (truth[i].monitors_ok > 0) ++heard;
    }
    total_events += static_cast<double>(events);
    total_heard += static_cast<double>(heard);
    const auto& p = ranges[s].pos;
    std::printf("  %5zu %6.0f %6.0f %6d | %8llu %9llu %8.1f%%%s\n", s, p.x,
                p.y, static_cast<int>(p.z / 4.0) + 1,
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(heard),
                events ? 100.0 * heard / events : 0.0,
                events && 100.0 * heard / events < 80.0 ? "  <-- weak spot"
                                                        : "");
  }
  std::printf("\noverall survey coverage: %.1f%% of the laptop's link-level "
              "events (paper: 95%%)\n",
              total_events > 0 ? 100.0 * total_heard / total_events : 0.0);
  return 0;
}
