// Protection-mode audit: which APs are slowing their 802.11g clients for
// 802.11b ghosts?
//
// Reproduces the paper's Section 7.3 operational finding as a tool: watch
// the air, classify stations b/g from their transmit rates, track
// CTS-to-self usage per BSS and recent 802.11b sightings, and flag the
// overprotective APs whose g clients are paying the protection tax
// (potentially 2x throughput — footnote 7) with no live b client in range.
//
// Usage: ./build/examples/protection_audit [seconds]
#include <cstdio>
#include <cstdlib>

#include "jigsaw/analysis/protection.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  const Micros duration = Seconds(argc > 1 ? std::atol(argv[1]) : 90);

  ScenarioConfig config;
  config.seed = 4;
  config.duration = duration;
  config.clients = 40;
  config.b_client_fraction = 0.2;
  config.workload.diurnal = true;           // b clients come and go
  config.ap.protection_timeout = duration;  // the "one hour" pathology
  Scenario scenario(config);
  scenario.Run();
  auto traces = scenario.TakeTraces();
  const MergeResult merged = MergeTraces(traces);

  ProtectionConfig pcfg;
  pcfg.bin_width = duration / 12;
  pcfg.practical_timeout = pcfg.bin_width / 4;
  pcfg.protection_active_window = pcfg.bin_width;
  const ProtectionSeries series = ComputeProtection(merged.jframes, pcfg);

  std::printf("audit over %lld s, %zu bins of %lld s:\n\n",
              static_cast<long long>(ToSeconds(duration)), series.Bins(),
              static_cast<long long>(pcfg.bin_width / kMicrosPerSecond));
  std::printf("  %6s %16s %14s %20s\n", "bin", "overprotective",
              "g clients", "g behind over-prot");
  int worst = 0;
  for (std::size_t i = 0; i < series.Bins(); ++i) {
    std::printf("  %6zu %16d %14d %20d\n", i, series.overprotective_aps[i],
                series.active_g_clients[i],
                series.g_clients_on_overprotective[i]);
    worst = std::max(worst, series.overprotective_aps[i]);
  }
  std::printf("\nrecommendation: %s\n",
              worst > 0
                  ? "shorten the AP protection timeout to ~1 minute; "
                    "affected 802.11g clients could roughly double bulk "
                    "throughput (CTS-to-self costs 264 us per frame)"
                  : "no overprotective APs in this window");
  return 0;
}
