// jigtool: command-line front end for stored trace directories.
//
// The workflow the original project shipped for its released software:
// point the tool at a directory of per-radio capture files and ask
// questions.  Subcommands:
//
//   jigtool demo <dir>              simulate a session and store traces
//   jigtool info <dir>              per-radio record counts and clock info
//   jigtool merge <dir> [threads]   run the merge, print summary statistics
//                                   (threads: 0 = auto, 1 = single-threaded)
//   jigtool timeline <dir> [us]     Figure-2 style view of a window
//
// The merge and timeline commands run the streaming pipeline into the
// analysis bus — one pass over the traces feeds every analysis at once.
// merge is fully windowed (link, interference and TCP loss ride the
// incremental reconstructor; memory stays O(exchange-timeout window));
// timeline opts into the collector buffer because rendering needs the
// whole jframe vector.
//
// Usage: ./build/examples/jigtool <command> <trace_dir> [args]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/analysis/visualize.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace {

using namespace jig;

int CmdDemo(const char* dir) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(10);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();
  const auto paths = traces.WriteDirectory(dir);
  std::printf("wrote %zu traces to %s\n", paths.size(), dir);
  return 0;
}

int CmdInfo(const char* dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  std::printf("%zu traces in %s\n", traces.size(), dir);
  std::printf("  %-6s %-5s %-8s %-6s %10s %16s\n", "radio", "pod", "monitor",
              "chan", "records", "ntp@local0 (us)");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& ft = dynamic_cast<FileTrace&>(traces.at(i));
    const TraceHeader& h = ft.header();
    std::printf("  %-6u %-5u %-8u %-6s %10llu %16lld\n", h.radio, h.pod,
                h.monitor, ChannelName(h.channel).c_str(),
                static_cast<unsigned long long>(ft.reader().TotalRecords()),
                static_cast<long long>(h.ntp_utc_of_local_zero_us));
  }
  return 0;
}

int CmdMerge(const char* dir, unsigned threads) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  // One streaming pass: the (optionally channel-sharded parallel) merge
  // feeds the windowed link reconstruction, the interference and TCP-loss
  // figures and the dispersion CDF through the bus — no jframe vector is
  // ever materialized; peak buffering is bounded by the 500 ms exchange
  // timeout.
  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  MergeConfig cfg;
  cfg.threads = threads;
  const auto stream = MergeTracesStreaming(traces, cfg, bus.Sink());
  bus.Finish();

  const auto& st = stream.stats;
  std::printf("radios synced:     %zu/%zu (BFS depth %d, |G|=%zu)\n",
              stream.bootstrap.SyncedCount(), stream.bootstrap.synced.size(),
              stream.bootstrap.max_bfs_depth,
              stream.bootstrap.sync_set_size);
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  if (!dispersion.distribution().empty()) {
    std::printf("sync dispersion:   p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                dispersion.distribution().Quantile(0.50),
                dispersion.distribution().Quantile(0.90),
                dispersion.distribution().Quantile(0.99));
  }
  std::printf("link layer:        %llu attempts -> %llu exchanges "
              "(%.2f%% / %.2f%% inferred)\n",
              static_cast<unsigned long long>(link.stats().attempts),
              static_cast<unsigned long long>(link.stats().exchanges),
              100.0 * link.stats().AttemptInferenceRate(),
              100.0 * link.stats().ExchangeInferenceRate());
  std::printf("interference:      %zu (s,r) pairs, %.1f%% interfered, "
              "background loss %.3f\n",
              interference.report().pairs.size(),
              100.0 * interference.report().fraction_pairs_interfered,
              interference.report().mean_background_loss);
  std::printf("tcp loss:          %llu flows, %.4f aggregate "
              "(%.4f wireless / %.4f wired)\n",
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_loss_rate,
              tcp_loss.report().aggregate_wireless_rate,
              tcp_loss.report().aggregate_wired_rate);
  std::printf("stream window:     peak %zu jframes buffered "
              "(%.2f%% of %llu)\n",
              link.peak_window_jframes(),
              bus.jframes_seen()
                  ? 100.0 * static_cast<double>(link.peak_window_jframes()) /
                        static_cast<double>(bus.jframes_seen())
                  : 0.0,
              static_cast<unsigned long long>(bus.jframes_seen()));
  return 0;
}

int CmdTimeline(const char* dir, Micros span) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  bus.SetTerminal(collector);
  MergeTracesStreaming(traces, {}, bus.Sink());
  bus.Finish();
  TimelineOptions options;
  options.span = span;
  // Start at the first busy multi-instance DATA frame.
  for (const JFrame& jf : collector.jframes()) {
    if (jf.frame.type == FrameType::kData && jf.InstanceCount() >= 3) {
      options.start = jf.timestamp - 100;
      break;
    }
  }
  std::printf("%s", RenderTimeline(collector.jframes(), options).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: jigtool demo|info|merge|timeline <trace_dir> "
                 "[threads|span_us]\n");
    return 2;
  }
  const char* cmd = argv[1];
  const char* dir = argv[2];
  if (std::strcmp(cmd, "demo") == 0) return CmdDemo(dir);
  if (std::strcmp(cmd, "info") == 0) return CmdInfo(dir);
  if (std::strcmp(cmd, "merge") == 0) {
    return CmdMerge(dir,
                    static_cast<unsigned>(argc > 3 ? std::atol(argv[3]) : 0));
  }
  if (std::strcmp(cmd, "timeline") == 0) {
    return CmdTimeline(dir, argc > 3 ? std::atol(argv[3]) : 5000);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd);
  return 2;
}
