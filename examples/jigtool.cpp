// jigtool: command-line front end for stored trace directories.
//
// The workflow the original project shipped for its released software:
// point the tool at a directory of per-radio capture files and ask
// questions.  Subcommands:
//
//   jigtool demo <dir>              simulate a session and store traces
//   jigtool demo-live <dir> [s] [ms]  simulate, then *write the traces
//                                   incrementally* (Sync every chunk,
//                                   finalize at the end) — a stand-in live
//                                   writer for --follow consumers
//   jigtool info <dir>              per-radio record counts and clock info
//   jigtool merge <dir> [threads] [--spill-dir <sdir>]
//                 [--spill-threshold <n>] [--stats-json <file>]
//                 [--mmap] [--pin-threads]
//                                   run the merge, print summary statistics
//                                   (threads: 0 = auto, 1 = single-threaded;
//                                   --spill-dir stages shard backlog on disk
//                                   instead of throttling at the watermark;
//                                   --spill-threshold overrides the queue
//                                   depth that engages the tier;
//                                   --stats-json writes the pipeline metric
//                                   registry as JSON after the run;
//                                   --mmap memory-maps the trace files, with
//                                   silent fallback to buffered reads;
//                                   --pin-threads pins shard workers to CPUs
//                                   round-robin — Linux only, no-op
//                                   elsewhere.  Neither changes the output)
//   jigtool follow <dir> [radios] [threads] [--spill-dir <sdir>]
//                 [--pin-threads]
//                                   tail a directory that is still being
//                                   written: resumable MergeSession +
//                                   analysis bus, merge summary at the end
//                                   (tail readers always use buffered reads;
//                                   --mmap does not apply)
//   jigtool stats <dir> [interval_s] [--stats-json <file>]
//                                   run (or tail) the merge and expose the
//                                   metric registry in Prometheus text
//                                   format — every interval_s while live,
//                                   once more when done
//   jigtool inspect-spill <dir>     decode the spill segments in a directory
//                                   per docs/FORMATS.md (a living check that
//                                   the spec matches the code)
//   jigtool timeline <dir> [us]     Figure-2 style view of a window
//
// Network doors (docs/FORMATS.md "Socket transport", docs/ARCHITECTURE.md
// "Two-level distributed merge"):
//
//   jigtool serve-trace <file.jigt> <host> <port>
//                                   push one trace file's framed bytes to a
//                                   collector: hello + header + blocks +
//                                   finalize marker (never the index).  A
//                                   truncated file streams its complete
//                                   blocks, then closes WITHOUT the marker
//                                   so the receiver sees the cut too.
//   jigtool collect <out_dir> <port> <n> [--ready-file <file>]
//                                   accept n socket trace streams on
//                                   127.0.0.1:<port> and persist each as an
//                                   indexed .jigt in <out_dir>.
//                                   --ready-file atomically writes <file>
//                                   (containing the bound port) once the
//                                   listener is accepting — the readiness
//                                   door scripts poll instead of sleeping
//   jigtool demo-live <dir> [s] [ms] --tcp <port>
//                                   the demo-live radios stream to a
//                                   collector on 127.0.0.1:<port> instead of
//                                   writing files (<dir> is ignored)
//   jigtool wing <dir> <root_host> <root_port> [wing_id] [threads]
//                                   wing node: local merge over <dir>'s
//                                   radios, relaying each record stream to
//                                   the root
//   jigtool root <port> <n> [threads] [--spill-dir <sdir>]
//                                   root node: accept n radio streams from
//                                   the wings on 127.0.0.1:<port> and run
//                                   the global merge
//
// Always-on service (docs/ARCHITECTURE.md "The monitoring service"):
//
//   jigtool serve <state_root> <trace_dir> [<trace_dir>...]
//                 [--expected <n>] [--window-us <us>] [--max-bytes <n>]
//                 [--interval-ms <ms>] [--analysis] [--until-done]
//                 [--spill-dir <sdir>]
//                                   long-running monitoring daemon: one
//                                   deployment per trace directory, all
//                                   multiplexed through a single poll
//                                   loop.  Per-deployment durable output
//                                   logs, .jigc checkpoints, and rolling
//                                   retention live under
//                                   <state_root>/<deployment>/; the
//                                   service snapshot (JSON) and metric
//                                   registry (Prometheus text) are
//                                   atomically replaced at
//                                   <state_root>/snapshot.json and
//                                   <state_root>/metrics.prom every
//                                   --interval-ms (default 500).  Runs
//                                   until SIGTERM/SIGINT (clean shutdown:
//                                   pending output published, final
//                                   checkpoint + snapshot written, exit
//                                   0), or — with --until-done — until
//                                   every deployment's traces finalize.
//                                   A crashed-and-restarted serve over
//                                   the same state_root recovers from the
//                                   checkpoints and appends exactly the
//                                   jframes the uninterrupted run would
//                                   have.
//
// Exit codes: 0 success, 1 unreadable/missing input or unreachable peer,
// 2 usage error, 3 corrupt or truncated input (inspect-spill, stats, and
// every network door — a mid-stream disconnect is truncation).  serve
// follows the same contract: an unloadable .jigc checkpoint or a
// deployment that ends failed is 3; a missing trace directory is 1; a
// SIGTERM'd daemon exits 0 after its final snapshot flush.
//
// The merge, follow and timeline commands run the streaming pipeline into
// the analysis bus — one pass over the traces feeds every analysis at once.
// merge/follow are fully windowed (link, interference and TCP loss ride the
// incremental reconstructor; memory stays O(exchange-timeout window));
// timeline opts into the collector buffer because rendering needs the
// whole jframe vector.
//
// Usage: ./build/examples/jigtool <command> <trace_dir> [args]
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/analysis/visualize.h"
#include "jigsaw/distributed.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/service.h"
#include "jigsaw/spill.h"
#include "obs/export.h"
#include "sim/scenario.h"
#include "trace/net.h"
#include "trace/socket_trace.h"
#include "trace/trace_file.h"

namespace {

using namespace jig;

int CmdDemo(const char* dir) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(10);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();
  const auto paths = traces.WriteDirectory(dir);
  std::printf("wrote %zu traces to %s\n", paths.size(), dir);
  return 0;
}

// Replays a simulated capture as a live writer: the traces are appended in
// capture-time chunks with a Sync (block cut + flush) after each, so a
// concurrent `jigtool follow` / `live_monitor --follow` sees the files
// grow; every trace is finalized at the end.
int CmdDemoLive(const char* dir, long seconds, long chunk_wall_ms) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(seconds);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();

  TraceSetWriter writer(dir);
  std::vector<const std::vector<CaptureRecord>*> records;
  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<LocalMicros> first_ts(traces.size(), 0);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& mem = dynamic_cast<MemoryTrace&>(traces.at(i));
    writer.AddRadio(mem.header());
    records.push_back(&mem.records());
    if (!mem.records().empty()) first_ts[i] = mem.records().front().timestamp;
  }
  // Chunk in capture time relative to each radio's own first record (local
  // clock bases differ per monitor), so every radio's file grows in
  // lockstep — the way real captures do.
  constexpr int kChunks = 20;
  const Micros chunk_span = config.duration / kChunks;
  std::printf("live-writing %zu traces to %s in %d chunks (%ld ms apart)\n",
              traces.size(), dir, kChunks, chunk_wall_ms);
  for (int chunk = 1;; ++chunk) {
    bool any_left = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& recs = *records[i];
      const auto end =
          static_cast<LocalMicros>(first_ts[i] + chunk * chunk_span);
      while (cursor[i] < recs.size() && recs[cursor[i]].timestamp < end) {
        writer.Append(i, recs[cursor[i]++]);
      }
      any_left = any_left || cursor[i] < recs.size();
    }
    writer.Sync();
    // A radio with nothing more to say finalizes immediately — like a
    // capture daemon shutting down — so a quiet radio never stalls the
    // followers' bootstrap or merge watermark for the whole session.
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (cursor[i] >= records[i]->size()) writer.Finalize(i);
    }
    if (!any_left) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(chunk_wall_ms));
  }
  writer.FinalizeAll();
  std::printf("finalized %zu traces\n", writer.size());
  return 0;
}

// demo-live over TCP: the simulated radios each connect to a collector
// and stream their capture in capture-time chunks — the network twin of
// the file-based demo-live above.
int CmdDemoLiveTcp(long seconds, long chunk_wall_ms, long tcp_port) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(seconds);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();

  std::vector<std::unique_ptr<SocketTraceWriter>> uplinks;
  std::vector<const std::vector<CaptureRecord>*> records;
  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<LocalMicros> first_ts(traces.size(), 0);
  try {
    for (std::size_t i = 0; i < traces.size(); ++i) {
      auto& mem = dynamic_cast<MemoryTrace&>(traces.at(i));
      uplinks.push_back(std::make_unique<SocketTraceWriter>(
          net::ConnectTo("127.0.0.1", static_cast<std::uint16_t>(tcp_port)),
          mem.header()));
      records.push_back(&mem.records());
      if (!mem.records().empty()) {
        first_ts[i] = mem.records().front().timestamp;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot reach collector on port %ld: %s\n",
                 tcp_port, e.what());
    return 1;
  }
  constexpr int kChunks = 20;
  const Micros chunk_span = config.duration / kChunks;
  std::printf("live-streaming %zu traces to 127.0.0.1:%ld in %d chunks "
              "(%ld ms apart)\n",
              traces.size(), tcp_port, kChunks, chunk_wall_ms);
  std::vector<bool> finished(traces.size(), false);
  for (int chunk = 1;; ++chunk) {
    bool any_left = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& recs = *records[i];
      const auto end =
          static_cast<LocalMicros>(first_ts[i] + chunk * chunk_span);
      while (cursor[i] < recs.size() && recs[cursor[i]].timestamp < end) {
        uplinks[i]->Append(recs[cursor[i]++]);
      }
      any_left = any_left || cursor[i] < recs.size();
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      uplinks[i]->Sync();
      // Same early-finalize behavior as the file writer: a radio with
      // nothing more to say ends its stream immediately.
      if (!finished[i] && cursor[i] >= records[i]->size()) {
        uplinks[i]->Finish();
        finished[i] = true;
      }
    }
    if (!any_left) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(chunk_wall_ms));
  }
  std::printf("finalized %zu streams\n", traces.size());
  return 0;
}

// Pushes one trace file's framed bytes to a collector.  Relays raw bytes
// block-by-block — it never re-encodes, and it never sends the index
// trailer (the socket stream ends at the finalize marker).  A truncated
// file relays its complete blocks and then closes WITHOUT the marker, so
// the receiver observes the same truncation (exit 3 on both ends).
int CmdServeTrace(const char* file, const char* host, long port) {
  std::FILE* f = std::fopen(file, "rb");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", file);
    return 1;
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  const auto read_exact = [f](void* buf, std::size_t n) {
    return std::fread(buf, 1, n, f) == n;
  };
  const auto decode_u32 = [](const std::uint8_t* b) {
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  };

  std::uint8_t prefix[12];  // magic + version + header_len
  if (!read_exact(prefix, sizeof prefix)) {
    std::fprintf(stderr, "truncated input: %s ends inside the file header\n",
                 file);
    return 3;
  }
  if (std::memcmp(prefix, kTraceDataMagic, 4) != 0 ||
      decode_u32(prefix + 4) != kTraceVersion) {
    std::fprintf(stderr, "corrupt input: bad magic/version in %s\n", file);
    return 3;
  }
  const std::uint32_t hdr_len = decode_u32(prefix + 8);
  if (hdr_len > kMaxPackedBlockLen) {
    std::fprintf(stderr, "corrupt input: garbage header length in %s\n",
                 file);
    return 3;
  }
  std::vector<std::uint8_t> header(hdr_len);
  if (!read_exact(header.data(), header.size())) {
    std::fprintf(stderr, "truncated input: %s ends inside the header\n",
                 file);
    return 3;
  }

  net::Socket sock;
  try {
    sock = net::ConnectTo(host, static_cast<std::uint16_t>(port));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot reach collector: %s\n", e.what());
    return 1;
  }
  try {
    std::uint8_t hello[12];
    std::memcpy(hello, kSocketHelloMagic, 4);
    const std::uint32_t hello_rest[2] = {kSocketHelloVersion, 0};
    std::memcpy(hello + 4, hello_rest, 8);
    net::SendAll(sock, hello, sizeof hello);
    net::SendAll(sock, prefix, sizeof prefix);
    net::SendAll(sock, header.data(), header.size());

    std::uint64_t blocks = 0;
    for (;;) {
      std::uint8_t len_buf[4];
      if (!read_exact(len_buf, sizeof len_buf)) {
        std::fprintf(stderr,
                     "truncated input: %s has no finalize marker "
                     "(streamed %llu complete blocks, closing without one)\n",
                     file, static_cast<unsigned long long>(blocks));
        return 3;
      }
      const std::uint32_t packed_len = decode_u32(len_buf);
      if (packed_len == 0) {
        net::SendAll(sock, len_buf, sizeof len_buf);  // the marker
        std::printf("served %s: %llu blocks + finalize marker\n", file,
                    static_cast<unsigned long long>(blocks));
        return 0;
      }
      if (packed_len > kMaxPackedBlockLen) {
        std::fprintf(stderr, "corrupt input: garbage block length in %s\n",
                     file);
        return 3;
      }
      std::vector<std::uint8_t> block(packed_len);
      if (!read_exact(block.data(), block.size())) {
        std::fprintf(stderr,
                     "truncated input: %s ends inside a block "
                     "(closing without the marker)\n",
                     file);
        return 3;
      }
      net::SendAll(sock, len_buf, sizeof len_buf);
      net::SendAll(sock, block.data(), block.size());
      ++blocks;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "collector went away mid-stream: %s\n", e.what());
    return 3;
  }
}

// Accepts n socket trace streams and persists each as an indexed .jigt —
// the ingest half of a collector: network in, seekable files out.
int CmdCollect(const char* out_dir, long port, long n,
               const char* ready_file) {
  try {
    net::Listener listener("127.0.0.1", static_cast<std::uint16_t>(port));
    std::printf("collecting %ld streams on 127.0.0.1:%u ...\n", n,
                listener.port());
    if (ready_file != nullptr) {
      // The listener is bound: senders may dial from here on.  Atomic, so
      // a poller never reads a half-written port number.
      obs::WriteFileAtomic(ready_file, std::to_string(listener.port()));
    }
    TraceSet traces = AcceptTraces(listener, static_cast<std::size_t>(n));
    std::filesystem::create_directories(out_dir);
    std::vector<std::unique_ptr<TraceFileWriter>> writers;
    std::vector<SocketTrace*> sockets;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      auto& st = dynamic_cast<SocketTrace&>(traces.at(i));
      sockets.push_back(&st);
      writers.push_back(std::make_unique<TraceFileWriter>(
          std::filesystem::path(out_dir) /
              ("r" + std::to_string(st.header().radio) + ".jigt"),
          st.header()));
    }
    std::vector<bool> done(traces.size(), false);
    std::vector<std::uint64_t> written(traces.size(), 0);
    for (;;) {
      bool all_done = true;
      bool progress = false;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (done[i]) continue;
        while (const CaptureRecord* rec = sockets[i]->NextRef()) {
          writers[i]->Append(*rec);
          ++written[i];
          progress = true;
        }
        if (sockets[i]->Finalized()) {
          writers[i]->Finish();
          done[i] = true;
          std::printf("  r%u finalized: %llu records\n",
                      sockets[i]->header().radio,
                      static_cast<unsigned long long>(written[i]));
          progress = true;
        } else {
          all_done = false;
        }
      }
      if (all_done) break;
      if (!progress) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    std::printf("collected %zu traces into %s\n", traces.size(), out_dir);
    return 0;
  } catch (const TraceTruncatedError& e) {
    std::fprintf(stderr, "truncated stream: %s\n", e.what());
    return 3;
  } catch (const TraceCorruptError& e) {
    std::fprintf(stderr, "corrupt stream: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Wing node: local merge over a trace directory, relaying every radio's
// record stream to the root (docs/ARCHITECTURE.md, two-level topology).
int CmdWing(const char* dir, const char* root_host, long root_port,
            long wing_id, unsigned threads, const char* spill_dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  try {
    WingConfig cfg;
    cfg.wing_id = static_cast<std::uint32_t>(wing_id);
    cfg.root_host = root_host;
    cfg.root_port = static_cast<std::uint16_t>(root_port);
    cfg.merge.threads = threads;
    if (spill_dir != nullptr) cfg.merge.spill_dir = spill_dir;
    WingSession wing(traces, cfg);
    const auto stats = wing.Run();
    std::printf("wing %ld: relayed %llu records from %zu radios "
                "(%llu local jframes)\n",
                wing_id,
                static_cast<unsigned long long>(wing.records_relayed()),
                traces.size(),
                static_cast<unsigned long long>(stats.stats.jframes));
    return 0;
  } catch (const TraceTruncatedError& e) {
    std::fprintf(stderr, "truncated input: %s\n", e.what());
    return 3;
  } catch (const TraceCorruptError& e) {
    std::fprintf(stderr, "corrupt input: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Root node: global merge over every wing's relayed radio streams.
int CmdRoot(long port, long n, unsigned threads, const char* spill_dir) {
  try {
    RootConfig cfg;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.n_streams = static_cast<std::size_t>(n);
    cfg.merge.threads = threads;
    if (spill_dir != nullptr) cfg.merge.spill_dir = spill_dir;
    RootSession root(cfg);
    std::printf("root: accepting %ld streams on 127.0.0.1:%u ...\n", n,
                root.port());
    const auto stats = root.Run([](JFrame&&) {});
    std::printf("radios synced:     %zu/%zu\n",
                stats.bootstrap.SyncedCount(), stats.bootstrap.synced.size());
    std::printf("jframes:           %llu (%llu across wing boundaries)\n",
                static_cast<unsigned long long>(root.jframes()),
                static_cast<unsigned long long>(root.boundary_jframes()));
    std::printf("events:            %llu (%llu valid)\n",
                static_cast<unsigned long long>(stats.stats.events_in),
                static_cast<unsigned long long>(stats.stats.valid_in));
    return 0;
  } catch (const TraceTruncatedError& e) {
    std::fprintf(stderr, "truncated stream: %s\n", e.what());
    return 3;
  } catch (const TraceCorruptError& e) {
    std::fprintf(stderr, "corrupt stream: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// SIGTERM/SIGINT door for `jigtool serve`: the handler only sets a flag;
// the poll loop notices it between rounds and walks the clean-shutdown
// path (publish pending output, final checkpoint, final snapshot).
volatile std::sig_atomic_t g_serve_stop = 0;

extern "C" void ServeStopHandler(int) { g_serve_stop = 1; }

struct ServeOptions {
  long expected = 0;        // traces to wait for, per deployment (0: first scan)
  long window_us = 0;       // rolling retention window (0: unbounded)
  long max_bytes = 0;       // per-deployment output-log cap (0: uncapped)
  long interval_ms = 500;   // snapshot/metrics exposition cadence
  bool analysis = false;    // run the stock analysis chain per deployment
  bool until_done = false;  // exit once every deployment finishes
  const char* spill_dir = nullptr;
};

// Always-on monitoring daemon over one or more trace directories.  Each
// directory becomes a DeploymentMonitor named after its basename with
// private state under <state_root>/<name>/; the MonitorService multiplexes
// all of them through one poll loop and exposes snapshot.json +
// metrics.prom in <state_root>.
int CmdServe(const char* state_root, const std::vector<const char*>& dirs,
             const ServeOptions& opt) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const char* d : dirs) {
    if (!fs::is_directory(d, ec)) {
      std::fprintf(stderr, "not a directory: %s\n", d);
      return 1;
    }
  }
  fs::create_directories(state_root, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create state root %s: %s\n", state_root,
                 ec.message().c_str());
    return 1;
  }

  ServiceConfig scfg;
  scfg.snapshot_path = fs::path(state_root) / "snapshot.json";
  scfg.metrics_path = fs::path(state_root) / "metrics.prom";
  scfg.snapshot_interval = std::chrono::milliseconds(
      opt.interval_ms > 0 ? opt.interval_ms : 500);
  MonitorService service(scfg);

  std::set<std::string> names;
  for (const char* d : dirs) {
    std::string name = fs::path(d).filename().string();
    if (name.empty()) name = fs::path(d).parent_path().filename().string();
    if (name.empty()) name = "deployment";
    while (!names.insert(name).second) name += "x";  // collision: suffix
    DeploymentConfig cfg;
    cfg.name = name;
    cfg.trace_dir = d;
    cfg.state_dir = fs::path(state_root) / name;
    cfg.expected_traces = static_cast<std::size_t>(opt.expected);
    cfg.retention_window_us = opt.window_us;
    cfg.max_output_bytes = static_cast<std::uint64_t>(opt.max_bytes);
    cfg.analysis = opt.analysis;
    if (opt.spill_dir != nullptr) {
      cfg.merge.spill_dir = (fs::path(opt.spill_dir) / name).string();
    }
    try {
      service.AddDeployment(std::move(cfg));
    } catch (const TraceError& e) {
      // Unrecoverable state (corrupt/truncated checkpoint or log).
      std::fprintf(stderr, "cannot recover deployment %s: %s\n",
                   name.c_str(), e.what());
      return 3;
    }
  }
  std::printf("serving %zu deployment(s); state in %s\n",
              service.deployments(), state_root);

  g_serve_stop = 0;
  std::signal(SIGTERM, ServeStopHandler);
  std::signal(SIGINT, ServeStopHandler);
  // Write the first exposition immediately: a supervisor (or test) polls
  // snapshot.json for readiness and must not race the first interval.
  service.WriteSnapshot();
  service.WriteMetrics();
  service.Run([&service, &opt] {
    if (g_serve_stop) return false;
    if (!opt.until_done) return true;
    for (std::size_t i = 0; i < service.deployments(); ++i) {
      const auto s = service.monitor(i).state();
      if (s == DeploymentMonitor::State::kDiscovering ||
          s == DeploymentMonitor::State::kRunning) {
        return true;
      }
    }
    return false;  // --until-done and every deployment settled
  });

  bool failed = false;
  for (std::size_t i = 0; i < service.deployments(); ++i) {
    DeploymentMonitor& m = service.monitor(i);
    const auto st = m.Status();
    std::printf("  %s: %s, %llu jframes (%llu recovered), %llu bytes in "
                "%llu segment(s)\n",
                st.name.c_str(), st.state.c_str(),
                static_cast<unsigned long long>(st.jframes),
                static_cast<unsigned long long>(st.recovered),
                static_cast<unsigned long long>(st.output_bytes),
                static_cast<unsigned long long>(st.output_segments));
    if (m.state() == DeploymentMonitor::State::kFailed) failed = true;
  }
  if (failed) {
    std::fprintf(stderr, "one or more deployments failed (see log above)\n");
    return 3;
  }
  std::printf("serve: clean shutdown\n");
  return 0;
}

int CmdInfo(const char* dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  std::printf("%zu traces in %s\n", traces.size(), dir);
  std::printf("  %-6s %-5s %-8s %-6s %10s %16s\n", "radio", "pod", "monitor",
              "chan", "records", "ntp@local0 (us)");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& ft = dynamic_cast<FileTrace&>(traces.at(i));
    const TraceHeader& h = ft.header();
    std::printf("  %-6u %-5u %-8u %-6s %10llu %16lld\n", h.radio, h.pod,
                h.monitor, ChannelName(h.channel).c_str(),
                static_cast<unsigned long long>(ft.reader().TotalRecords()),
                static_cast<long long>(h.ntp_utc_of_local_zero_us));
  }
  return 0;
}

int CmdMerge(const char* dir, unsigned threads, const char* spill_dir,
             long spill_threshold, const char* stats_json, bool use_mmap,
             bool pin_threads) {
  TraceReadOptions read_options;
  read_options.use_mmap = use_mmap;
  TraceSet traces = TraceSet::OpenDirectory(dir, read_options);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  // One streaming pass: the (optionally channel-sharded parallel) merge
  // feeds the windowed link reconstruction, the interference and TCP-loss
  // figures and the dispersion CDF through the bus — no jframe vector is
  // ever materialized; peak buffering is bounded by the 500 ms exchange
  // timeout.
  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  MergeConfig cfg;
  cfg.threads = threads;
  cfg.pin_threads = pin_threads;
  if (spill_dir != nullptr) cfg.spill_dir = spill_dir;
  if (spill_threshold > 0) {
    cfg.spill_threshold = static_cast<std::size_t>(spill_threshold);
  }
  const auto stream = MergeTracesStreaming(traces, cfg, bus.Sink());
  bus.Finish();

  const auto& st = stream.stats;
  std::printf("radios synced:     %zu/%zu (BFS depth %d, |G|=%zu)\n",
              stream.bootstrap.SyncedCount(), stream.bootstrap.synced.size(),
              stream.bootstrap.max_bfs_depth,
              stream.bootstrap.sync_set_size);
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  if (!dispersion.distribution().empty()) {
    std::printf("sync dispersion:   p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                dispersion.distribution().Quantile(0.50),
                dispersion.distribution().Quantile(0.90),
                dispersion.distribution().Quantile(0.99));
  }
  std::printf("link layer:        %llu attempts -> %llu exchanges "
              "(%.2f%% / %.2f%% inferred)\n",
              static_cast<unsigned long long>(link.stats().attempts),
              static_cast<unsigned long long>(link.stats().exchanges),
              100.0 * link.stats().AttemptInferenceRate(),
              100.0 * link.stats().ExchangeInferenceRate());
  std::printf("interference:      %zu (s,r) pairs, %.1f%% interfered, "
              "background loss %.3f\n",
              interference.report().pairs.size(),
              100.0 * interference.report().fraction_pairs_interfered,
              interference.report().mean_background_loss);
  std::printf("tcp loss:          %llu flows, %.4f aggregate "
              "(%.4f wireless / %.4f wired)\n",
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_loss_rate,
              tcp_loss.report().aggregate_wireless_rate,
              tcp_loss.report().aggregate_wired_rate);
  std::printf("stream window:     peak %zu jframes buffered "
              "(%.2f%% of %llu)\n",
              link.peak_window_jframes(),
              bus.jframes_seen()
                  ? 100.0 * static_cast<double>(link.peak_window_jframes()) /
                        static_cast<double>(bus.jframes_seen())
                  : 0.0,
              static_cast<unsigned long long>(bus.jframes_seen()));
  if (stats_json != nullptr) {
    obs::WriteFileAtomic(stats_json,
                         obs::ToJson(obs::MetricRegistry::Global().Collect()));
    std::printf("metrics json:      %s\n", stats_json);
  }
  return 0;
}

// Tails a directory of growing traces with a resumable MergeSession and
// prints periodic Figure 9/11 snapshots; once every writer finalizes, the
// summary is identical to `jigtool merge` over the finished files (the
// live stream is byte-identical to the batch stream by construction).
int CmdFollow(const char* dir, std::size_t radios, unsigned threads,
              const char* spill_dir, long spill_threshold,
              bool pin_threads) {
  std::printf("following %s ...\n", dir);
  TraceSet traces = TraceSet::FollowDirectory(dir, radios);
  std::printf("tailing %zu traces\n", traces.size());

  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  MergeConfig cfg;
  cfg.threads = threads;
  cfg.pin_threads = pin_threads;
  if (spill_dir != nullptr) cfg.spill_dir = spill_dir;
  if (spill_threshold > 0) {
    cfg.spill_threshold = static_cast<std::size_t>(spill_threshold);
  }
  MergeSession session(traces, cfg, bus.Sink());

  auto last_snapshot = std::chrono::steady_clock::now();
  for (;;) {
    const auto status = session.Poll();
    if (status == MergeSession::Status::kDone) break;
    const auto now = std::chrono::steady_clock::now();
    if (session.bootstrapped() &&
        now - last_snapshot >= std::chrono::seconds(1)) {
      const auto fig9 = interference.SnapshotReport();
      const auto fig11 = tcp_loss.SnapshotReport();
      std::printf("  [live] %llu jframes | fig9 %zu pairs (%.1f%% "
                  "interfered) | fig11 %llu flows loss %.4f | "
                  "%zu retained, %llu spilled\n",
                  static_cast<unsigned long long>(session.jframes_emitted()),
                  fig9.pairs.size(),
                  100.0 * fig9.fraction_pairs_interfered,
                  static_cast<unsigned long long>(fig11.flows_considered),
                  fig11.aggregate_loss_rate, session.retained_jframes(),
                  static_cast<unsigned long long>(
                      session.spilled_jframes()));
      last_snapshot = now;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bus.Finish();

  const auto st = session.stats();
  std::printf("radios synced:     %zu/%zu\n",
              session.bootstrap().SyncedCount(),
              session.bootstrap().synced.size());
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  if (!dispersion.distribution().empty()) {
    std::printf("sync dispersion:   p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                dispersion.distribution().Quantile(0.50),
                dispersion.distribution().Quantile(0.90),
                dispersion.distribution().Quantile(0.99));
  }
  std::printf("interference:      %zu (s,r) pairs, %.1f%% interfered\n",
              interference.report().pairs.size(),
              100.0 * interference.report().fraction_pairs_interfered);
  std::printf("tcp loss:          %llu flows, %.4f aggregate "
              "(%.4f wireless / %.4f wired)\n",
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_loss_rate,
              tcp_loss.report().aggregate_wireless_rate,
              tcp_loss.report().aggregate_wired_rate);
  std::printf("live retention:    peak %zu jframes buffered, %llu spilled "
              "to disk\n",
              session.peak_retained_jframes(),
              static_cast<unsigned long long>(session.spilled_jframes()));
  return 0;
}

// Runs (or tails) the merge over a directory and exposes the pipeline
// metric registry in Prometheus text format: one dump every `interval_s`
// while the run is live, and a final dump once it completes.  With
// --stats-json the final snapshot is also written as JSON.  Works on
// finalized and still-growing directories alike (FollowDirectory tails
// both).
int CmdStats(const char* dir, long interval_s, const char* stats_json) {
  namespace fs = std::filesystem;
  // Pre-check the directory so missing input fails fast instead of
  // spending FollowDirectory's settle timeout.
  std::error_code ec;
  bool any_trace = false;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".jigt") {
      any_trace = true;
      break;
    }
  }
  if (ec || !any_trace) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  if (interval_s <= 0) interval_s = 1;
  try {
    TraceSet traces = TraceSet::FollowDirectory(dir);
    // Register the stock analysis chain so the bus/consumer metrics tick:
    // a stats run should expose the same stages a real merge exercises.
    AnalysisBus bus;
    auto& link = bus.Emplace<LinkConsumer>();
    bus.Emplace<InterferenceConsumer>(link);
    bus.Emplace<TcpLossConsumer>(link);
    MergeConfig cfg;
    MergeSession session(traces, cfg, bus.Sink());
    auto last_dump = std::chrono::steady_clock::now();
    for (;;) {
      const auto status = session.Poll();
      if (status == MergeSession::Status::kDone) break;
      const auto now = std::chrono::steady_clock::now();
      if (now - last_dump >= std::chrono::seconds(interval_s)) {
        std::printf("# live merge lag: %lld us\n%s\n",
                    static_cast<long long>(session.live_lag_us()),
                    obs::ToPrometheusText(session.MetricsSnapshot()).c_str());
        last_dump = now;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    bus.Finish();
    const auto snapshot = session.MetricsSnapshot();
    std::printf("%s", obs::ToPrometheusText(snapshot).c_str());
    if (stats_json != nullptr) {
      obs::WriteFileAtomic(stats_json, obs::ToJson(snapshot));
      std::fprintf(stderr, "wrote metrics JSON to %s\n", stats_json);
    }
    return 0;
  } catch (const TraceTruncatedError& e) {
    std::fprintf(stderr, "truncated input: %s\n", e.what());
    return 3;
  } catch (const TraceCorruptError& e) {
    std::fprintf(stderr, "corrupt input: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Decodes every spill segment in a directory using the strict reader —
// exactly the docs/FORMATS.md rules, so this doubles as a living check
// that the spec matches the code.  A directory left by a crashed session
// reports truncation/corruption per segment instead of dying on the first.
int CmdInspectSpill(const char* dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".jigs") segments.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot read %s: %s\n", dir, ec.message().c_str());
    return 1;
  }
  if (segments.empty()) {
    std::fprintf(stderr, "no .jigs segments in %s\n", dir);
    return 1;
  }
  // FIFO order is (channel, sequence); lexicographic filename order would
  // misplace seq >= 10 (ch6-10 before ch6-2), misrepresenting the spill
  // stream this tool exists to diagnose.
  const auto segment_key = [](const fs::path& p) {
    unsigned chan = 0;
    unsigned long long seq = 0;
    if (std::sscanf(p.filename().string().c_str(), "ch%u-%llu.jigs", &chan,
                    &seq) != 2) {
      chan = ~0u;  // foreign names sort last, still deterministically
    }
    return std::tuple(chan, seq, p.filename().string());
  };
  std::sort(segments.begin(), segments.end(),
            [&segment_key](const fs::path& a, const fs::path& b) {
              return segment_key(a) < segment_key(b);
            });
  std::printf("%zu spill segments in %s\n", segments.size(), dir);
  std::printf("  %-22s %-5s %-4s %8s %8s %10s  %s\n", "segment", "chan",
              "seq", "blocks", "jframes", "bytes", "status");
  int rc = 0;
  for (const auto& path : segments) {
    const auto name = path.filename().string();
    try {
      SpillSegmentReader reader(path, /*strict=*/true);
      UniversalMicros first_ts = 0;
      UniversalMicros last_ts = 0;
      while (const auto jf = reader.Next()) {
        if (reader.records_read() == 1) first_ts = jf->timestamp;
        last_ts = jf->timestamp;
      }
      std::printf("  %-22s %-5u %-4llu %8llu %8llu %10ju  finalized "
                  "[%lld..%lld us]\n",
                  name.c_str(), reader.header().channel,
                  static_cast<unsigned long long>(reader.header().sequence),
                  static_cast<unsigned long long>(reader.blocks_read()),
                  static_cast<unsigned long long>(reader.records_read()),
                  static_cast<std::uintmax_t>(fs::file_size(path)),
                  static_cast<long long>(first_ts),
                  static_cast<long long>(last_ts));
    } catch (const TraceTruncatedError& e) {
      std::printf("  %-22s %-5s %-4s %8s %8s %10s  TRUNCATED: %s\n",
                  name.c_str(), "-", "-", "-", "-", "-", e.what());
      rc = 3;
    } catch (const TraceCorruptError& e) {
      std::printf("  %-22s %-5s %-4s %8s %8s %10s  CORRUPT: %s\n",
                  name.c_str(), "-", "-", "-", "-", "-", e.what());
      rc = 3;
    } catch (const std::exception& e) {
      // Unreadable file, stat failure, plain read error: still report it
      // per segment rather than dying before the rest are inspected.
      std::printf("  %-22s %-5s %-4s %8s %8s %10s  ERROR: %s\n",
                  name.c_str(), "-", "-", "-", "-", "-", e.what());
      rc = std::max(rc, 1);
    }
  }
  return rc;
}

int CmdTimeline(const char* dir, Micros span) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  bus.SetTerminal(collector);
  MergeTracesStreaming(traces, {}, bus.Sink());
  bus.Finish();
  TimelineOptions options;
  options.span = span;
  // Start at the first busy multi-instance DATA frame.
  for (const JFrame& jf : collector.jframes()) {
    if (jf.frame.type == FrameType::kData && jf.InstanceCount() >= 3) {
      options.start = jf.timestamp - 100;
      break;
    }
  }
  std::printf("%s", RenderTimeline(collector.jframes(), options).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: jigtool demo|demo-live|info|merge|follow|stats|"
                 "inspect-spill|timeline|serve-trace|collect|wing|root|serve "
                 "<dir|file|port> [args] [--spill-dir <sdir>] "
                 "[--stats-json <file>] [--mmap] [--pin-threads] "
                 "[--tcp <port>]\n");
    return 2;
  }
  const char* cmd = argv[1];
  const char* dir = argv[2];
  // Extract the flags any subcommand may carry; what remains are the
  // positional arguments.
  const char* spill_dir = nullptr;
  const char* stats_json = nullptr;
  long spill_threshold = 0;
  long tcp_port = -1;
  bool use_mmap = false;
  bool pin_threads = false;
  ServeOptions serve_opt;
  const char* ready_file = nullptr;
  std::vector<const char*> pos;
  const auto long_flag = [&](int& i, const char* flag, long& out) {
    if (std::strcmp(argv[i], flag) != 0) return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a numeric argument\n", flag);
      std::exit(2);
    }
    out = std::atol(argv[++i]);
    return true;
  };
  for (int i = 3; i < argc; ++i) {
    if (long_flag(i, "--expected", serve_opt.expected) ||
        long_flag(i, "--window-us", serve_opt.window_us) ||
        long_flag(i, "--max-bytes", serve_opt.max_bytes) ||
        long_flag(i, "--interval-ms", serve_opt.interval_ms)) {
      continue;
    }
    if (std::strcmp(argv[i], "--analysis") == 0) {
      serve_opt.analysis = true;
      continue;
    }
    if (std::strcmp(argv[i], "--ready-file") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--ready-file needs a file argument\n");
        return 2;
      }
      ready_file = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--until-done") == 0) {
      serve_opt.until_done = true;
      continue;
    }
    if (std::strcmp(argv[i], "--mmap") == 0) {
      use_mmap = true;
      continue;
    }
    if (std::strcmp(argv[i], "--pin-threads") == 0) {
      pin_threads = true;
      continue;
    }
    if (std::strcmp(argv[i], "--spill-dir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--spill-dir needs a directory argument\n");
        return 2;
      }
      spill_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--stats-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--stats-json needs a file argument\n");
        return 2;
      }
      stats_json = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--spill-threshold") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--spill-threshold needs a jframe count\n");
        return 2;
      }
      spill_threshold = std::atol(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--tcp") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--tcp needs a port argument\n");
        return 2;
      }
      tcp_port = std::atol(argv[++i]);
      continue;
    }
    pos.push_back(argv[i]);
  }
  const auto pos_long = [&pos](std::size_t i, long fallback) {
    return pos.size() > i ? std::atol(pos[i]) : fallback;
  };
  if (spill_dir != nullptr && std::strcmp(cmd, "merge") != 0 &&
      std::strcmp(cmd, "follow") != 0 && std::strcmp(cmd, "root") != 0 &&
      std::strcmp(cmd, "wing") != 0 && std::strcmp(cmd, "serve") != 0) {
    std::fprintf(stderr,
                 "warning: --spill-dir only applies to merge/follow/wing/"
                 "root/serve; ignored for '%s'\n",
                 cmd);
  }
  if (tcp_port >= 0 && std::strcmp(cmd, "demo-live") != 0) {
    std::fprintf(stderr,
                 "warning: --tcp only applies to demo-live; "
                 "ignored for '%s'\n",
                 cmd);
  }
  if (stats_json != nullptr && std::strcmp(cmd, "merge") != 0 &&
      std::strcmp(cmd, "stats") != 0) {
    std::fprintf(stderr,
                 "warning: --stats-json only applies to merge/stats; "
                 "ignored for '%s'\n",
                 cmd);
  }
  if (use_mmap && std::strcmp(cmd, "merge") != 0) {
    std::fprintf(stderr,
                 "warning: --mmap only applies to merge (tail readers "
                 "re-poll a growing file); ignored for '%s'\n",
                 cmd);
  }
  if (pin_threads && std::strcmp(cmd, "merge") != 0 &&
      std::strcmp(cmd, "follow") != 0) {
    std::fprintf(stderr,
                 "warning: --pin-threads only applies to merge/follow; "
                 "ignored for '%s'\n",
                 cmd);
  }
  if (std::strcmp(cmd, "demo") == 0) return CmdDemo(dir);
  if (std::strcmp(cmd, "demo-live") == 0) {
    if (tcp_port >= 0) {
      // <dir> is ignored in TCP mode: the radios stream to a collector
      // instead of appending files.
      return CmdDemoLiveTcp(pos_long(0, 10), pos_long(1, 250), tcp_port);
    }
    return CmdDemoLive(dir, pos_long(0, 10), pos_long(1, 250));
  }
  if (std::strcmp(cmd, "serve-trace") == 0) {
    if (pos.size() < 2) {
      std::fprintf(stderr,
                   "usage: jigtool serve-trace <file.jigt> <host> <port>\n");
      return 2;
    }
    return CmdServeTrace(dir, pos[0], std::atol(pos[1]));
  }
  if (std::strcmp(cmd, "collect") == 0) {
    if (pos.size() < 2) {
      std::fprintf(stderr,
                   "usage: jigtool collect <out_dir> <port> <n> "
                   "[--ready-file <file>]\n");
      return 2;
    }
    return CmdCollect(dir, std::atol(pos[0]), std::atol(pos[1]), ready_file);
  }
  if (std::strcmp(cmd, "wing") == 0) {
    if (pos.size() < 2) {
      std::fprintf(stderr,
                   "usage: jigtool wing <dir> <root_host> <root_port> "
                   "[wing_id] [threads]\n");
      return 2;
    }
    return CmdWing(dir, pos[0], std::atol(pos[1]), pos_long(2, 0),
                   static_cast<unsigned>(pos_long(3, 0)), spill_dir);
  }
  if (std::strcmp(cmd, "root") == 0) {
    // <dir> slot carries the port for this command.
    if (pos.empty()) {
      std::fprintf(stderr,
                   "usage: jigtool root <port> <n> [threads] "
                   "[--spill-dir <sdir>]\n");
      return 2;
    }
    return CmdRoot(std::atol(dir), std::atol(pos[0]),
                   static_cast<unsigned>(pos_long(1, 0)), spill_dir);
  }
  if (std::strcmp(cmd, "serve") == 0) {
    // <dir> slot carries the state root; every positional is a deployment.
    if (pos.empty()) {
      std::fprintf(stderr,
                   "usage: jigtool serve <state_root> <trace_dir> "
                   "[<trace_dir>...] [--expected <n>] [--window-us <us>] "
                   "[--max-bytes <n>] [--interval-ms <ms>] [--analysis] "
                   "[--until-done] [--spill-dir <sdir>]\n");
      return 2;
    }
    serve_opt.spill_dir = spill_dir;
    return CmdServe(dir, pos, serve_opt);
  }
  if (std::strcmp(cmd, "info") == 0) return CmdInfo(dir);
  if (std::strcmp(cmd, "merge") == 0) {
    return CmdMerge(dir, static_cast<unsigned>(pos_long(0, 0)), spill_dir,
                    spill_threshold, stats_json, use_mmap, pin_threads);
  }
  if (std::strcmp(cmd, "follow") == 0) {
    return CmdFollow(dir, static_cast<std::size_t>(pos_long(0, 0)),
                     static_cast<unsigned>(pos_long(1, 0)), spill_dir,
                     spill_threshold, pin_threads);
  }
  if (std::strcmp(cmd, "stats") == 0) {
    return CmdStats(dir, pos_long(0, 1), stats_json);
  }
  if (std::strcmp(cmd, "inspect-spill") == 0) return CmdInspectSpill(dir);
  if (std::strcmp(cmd, "timeline") == 0) {
    return CmdTimeline(dir, pos_long(0, 5000));
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd);
  return 2;
}
