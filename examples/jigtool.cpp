// jigtool: command-line front end for stored trace directories.
//
// The workflow the original project shipped for its released software:
// point the tool at a directory of per-radio capture files and ask
// questions.  Subcommands:
//
//   jigtool demo <dir>              simulate a session and store traces
//   jigtool demo-live <dir> [s] [ms]  simulate, then *write the traces
//                                   incrementally* (Sync every chunk,
//                                   finalize at the end) — a stand-in live
//                                   writer for --follow consumers
//   jigtool info <dir>              per-radio record counts and clock info
//   jigtool merge <dir> [threads]   run the merge, print summary statistics
//                                   (threads: 0 = auto, 1 = single-threaded)
//   jigtool follow <dir> [radios] [threads]
//                                   tail a directory that is still being
//                                   written: resumable MergeSession +
//                                   analysis bus, merge summary at the end
//   jigtool timeline <dir> [us]     Figure-2 style view of a window
//
// The merge, follow and timeline commands run the streaming pipeline into
// the analysis bus — one pass over the traces feeds every analysis at once.
// merge/follow are fully windowed (link, interference and TCP loss ride the
// incremental reconstructor; memory stays O(exchange-timeout window));
// timeline opts into the collector buffer because rendering needs the
// whole jframe vector.
//
// Usage: ./build/examples/jigtool <command> <trace_dir> [args]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/analysis/visualize.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace {

using namespace jig;

int CmdDemo(const char* dir) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(10);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();
  const auto paths = traces.WriteDirectory(dir);
  std::printf("wrote %zu traces to %s\n", paths.size(), dir);
  return 0;
}

// Replays a simulated capture as a live writer: the traces are appended in
// capture-time chunks with a Sync (block cut + flush) after each, so a
// concurrent `jigtool follow` / `live_monitor --follow` sees the files
// grow; every trace is finalized at the end.
int CmdDemoLive(const char* dir, long seconds, long chunk_wall_ms) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(seconds);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();

  TraceSetWriter writer(dir);
  std::vector<const std::vector<CaptureRecord>*> records;
  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<LocalMicros> first_ts(traces.size(), 0);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& mem = dynamic_cast<MemoryTrace&>(traces.at(i));
    writer.AddRadio(mem.header());
    records.push_back(&mem.records());
    if (!mem.records().empty()) first_ts[i] = mem.records().front().timestamp;
  }
  // Chunk in capture time relative to each radio's own first record (local
  // clock bases differ per monitor), so every radio's file grows in
  // lockstep — the way real captures do.
  constexpr int kChunks = 20;
  const Micros chunk_span = config.duration / kChunks;
  std::printf("live-writing %zu traces to %s in %d chunks (%ld ms apart)\n",
              traces.size(), dir, kChunks, chunk_wall_ms);
  for (int chunk = 1;; ++chunk) {
    bool any_left = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& recs = *records[i];
      const auto end =
          static_cast<LocalMicros>(first_ts[i] + chunk * chunk_span);
      while (cursor[i] < recs.size() && recs[cursor[i]].timestamp < end) {
        writer.Append(i, recs[cursor[i]++]);
      }
      any_left = any_left || cursor[i] < recs.size();
    }
    writer.Sync();
    // A radio with nothing more to say finalizes immediately — like a
    // capture daemon shutting down — so a quiet radio never stalls the
    // followers' bootstrap or merge watermark for the whole session.
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (cursor[i] >= records[i]->size()) writer.Finalize(i);
    }
    if (!any_left) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(chunk_wall_ms));
  }
  writer.FinalizeAll();
  std::printf("finalized %zu traces\n", writer.size());
  return 0;
}

int CmdInfo(const char* dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  std::printf("%zu traces in %s\n", traces.size(), dir);
  std::printf("  %-6s %-5s %-8s %-6s %10s %16s\n", "radio", "pod", "monitor",
              "chan", "records", "ntp@local0 (us)");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& ft = dynamic_cast<FileTrace&>(traces.at(i));
    const TraceHeader& h = ft.header();
    std::printf("  %-6u %-5u %-8u %-6s %10llu %16lld\n", h.radio, h.pod,
                h.monitor, ChannelName(h.channel).c_str(),
                static_cast<unsigned long long>(ft.reader().TotalRecords()),
                static_cast<long long>(h.ntp_utc_of_local_zero_us));
  }
  return 0;
}

int CmdMerge(const char* dir, unsigned threads) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  // One streaming pass: the (optionally channel-sharded parallel) merge
  // feeds the windowed link reconstruction, the interference and TCP-loss
  // figures and the dispersion CDF through the bus — no jframe vector is
  // ever materialized; peak buffering is bounded by the 500 ms exchange
  // timeout.
  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  MergeConfig cfg;
  cfg.threads = threads;
  const auto stream = MergeTracesStreaming(traces, cfg, bus.Sink());
  bus.Finish();

  const auto& st = stream.stats;
  std::printf("radios synced:     %zu/%zu (BFS depth %d, |G|=%zu)\n",
              stream.bootstrap.SyncedCount(), stream.bootstrap.synced.size(),
              stream.bootstrap.max_bfs_depth,
              stream.bootstrap.sync_set_size);
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  if (!dispersion.distribution().empty()) {
    std::printf("sync dispersion:   p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                dispersion.distribution().Quantile(0.50),
                dispersion.distribution().Quantile(0.90),
                dispersion.distribution().Quantile(0.99));
  }
  std::printf("link layer:        %llu attempts -> %llu exchanges "
              "(%.2f%% / %.2f%% inferred)\n",
              static_cast<unsigned long long>(link.stats().attempts),
              static_cast<unsigned long long>(link.stats().exchanges),
              100.0 * link.stats().AttemptInferenceRate(),
              100.0 * link.stats().ExchangeInferenceRate());
  std::printf("interference:      %zu (s,r) pairs, %.1f%% interfered, "
              "background loss %.3f\n",
              interference.report().pairs.size(),
              100.0 * interference.report().fraction_pairs_interfered,
              interference.report().mean_background_loss);
  std::printf("tcp loss:          %llu flows, %.4f aggregate "
              "(%.4f wireless / %.4f wired)\n",
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_loss_rate,
              tcp_loss.report().aggregate_wireless_rate,
              tcp_loss.report().aggregate_wired_rate);
  std::printf("stream window:     peak %zu jframes buffered "
              "(%.2f%% of %llu)\n",
              link.peak_window_jframes(),
              bus.jframes_seen()
                  ? 100.0 * static_cast<double>(link.peak_window_jframes()) /
                        static_cast<double>(bus.jframes_seen())
                  : 0.0,
              static_cast<unsigned long long>(bus.jframes_seen()));
  return 0;
}

// Tails a directory of growing traces with a resumable MergeSession and
// prints periodic Figure 9/11 snapshots; once every writer finalizes, the
// summary is identical to `jigtool merge` over the finished files (the
// live stream is byte-identical to the batch stream by construction).
int CmdFollow(const char* dir, std::size_t radios, unsigned threads) {
  std::printf("following %s ...\n", dir);
  TraceSet traces = TraceSet::FollowDirectory(dir, radios);
  std::printf("tailing %zu traces\n", traces.size());

  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  MergeConfig cfg;
  cfg.threads = threads;
  MergeSession session(traces, cfg, bus.Sink());

  auto last_snapshot = std::chrono::steady_clock::now();
  for (;;) {
    const auto status = session.Poll();
    if (status == MergeSession::Status::kDone) break;
    const auto now = std::chrono::steady_clock::now();
    if (session.bootstrapped() &&
        now - last_snapshot >= std::chrono::seconds(1)) {
      const auto fig9 = interference.SnapshotReport();
      const auto fig11 = tcp_loss.SnapshotReport();
      std::printf("  [live] %llu jframes | fig9 %zu pairs (%.1f%% "
                  "interfered) | fig11 %llu flows loss %.4f | "
                  "%zu retained\n",
                  static_cast<unsigned long long>(session.jframes_emitted()),
                  fig9.pairs.size(),
                  100.0 * fig9.fraction_pairs_interfered,
                  static_cast<unsigned long long>(fig11.flows_considered),
                  fig11.aggregate_loss_rate, session.retained_jframes());
      last_snapshot = now;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bus.Finish();

  const auto st = session.stats();
  std::printf("radios synced:     %zu/%zu\n",
              session.bootstrap().SyncedCount(),
              session.bootstrap().synced.size());
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  if (!dispersion.distribution().empty()) {
    std::printf("sync dispersion:   p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                dispersion.distribution().Quantile(0.50),
                dispersion.distribution().Quantile(0.90),
                dispersion.distribution().Quantile(0.99));
  }
  std::printf("interference:      %zu (s,r) pairs, %.1f%% interfered\n",
              interference.report().pairs.size(),
              100.0 * interference.report().fraction_pairs_interfered);
  std::printf("tcp loss:          %llu flows, %.4f aggregate "
              "(%.4f wireless / %.4f wired)\n",
              static_cast<unsigned long long>(
                  tcp_loss.report().flows_considered),
              tcp_loss.report().aggregate_loss_rate,
              tcp_loss.report().aggregate_wireless_rate,
              tcp_loss.report().aggregate_wired_rate);
  std::printf("live retention:    peak %zu jframes buffered\n",
              session.peak_retained_jframes());
  return 0;
}

int CmdTimeline(const char* dir, Micros span) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  bus.SetTerminal(collector);
  MergeTracesStreaming(traces, {}, bus.Sink());
  bus.Finish();
  TimelineOptions options;
  options.span = span;
  // Start at the first busy multi-instance DATA frame.
  for (const JFrame& jf : collector.jframes()) {
    if (jf.frame.type == FrameType::kData && jf.InstanceCount() >= 3) {
      options.start = jf.timestamp - 100;
      break;
    }
  }
  std::printf("%s", RenderTimeline(collector.jframes(), options).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: jigtool demo|demo-live|info|merge|follow|timeline "
                 "<trace_dir> [args]\n");
    return 2;
  }
  const char* cmd = argv[1];
  const char* dir = argv[2];
  if (std::strcmp(cmd, "demo") == 0) return CmdDemo(dir);
  if (std::strcmp(cmd, "demo-live") == 0) {
    return CmdDemoLive(dir, argc > 3 ? std::atol(argv[3]) : 10,
                       argc > 4 ? std::atol(argv[4]) : 250);
  }
  if (std::strcmp(cmd, "info") == 0) return CmdInfo(dir);
  if (std::strcmp(cmd, "merge") == 0) {
    return CmdMerge(dir,
                    static_cast<unsigned>(argc > 3 ? std::atol(argv[3]) : 0));
  }
  if (std::strcmp(cmd, "follow") == 0) {
    return CmdFollow(
        dir, argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 0,
        static_cast<unsigned>(argc > 4 ? std::atol(argv[4]) : 0));
  }
  if (std::strcmp(cmd, "timeline") == 0) {
    return CmdTimeline(dir, argc > 3 ? std::atol(argv[3]) : 5000);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd);
  return 2;
}
