// jigtool: command-line front end for stored trace directories.
//
// The workflow the original project shipped for its released software:
// point the tool at a directory of per-radio capture files and ask
// questions.  Subcommands:
//
//   jigtool demo <dir>              simulate a session and store traces
//   jigtool info <dir>              per-radio record counts and clock info
//   jigtool merge <dir>             run the merge, print summary statistics
//   jigtool timeline <dir> [us]     Figure-2 style view of a window
//
// Usage: ./build/examples/jigtool <command> <trace_dir> [args]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "jigsaw/analysis/visualize.h"
#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace {

using namespace jig;

int CmdDemo(const char* dir) {
  ScenarioConfig config;
  config.seed = 10;
  config.duration = Seconds(10);
  config.clients = 20;
  Scenario scenario(config);
  scenario.Run();
  TraceSet traces = scenario.TakeTraces();
  const auto paths = traces.WriteDirectory(dir);
  std::printf("wrote %zu traces to %s\n", paths.size(), dir);
  return 0;
}

int CmdInfo(const char* dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  std::printf("%zu traces in %s\n", traces.size(), dir);
  std::printf("  %-6s %-5s %-8s %-6s %10s %16s\n", "radio", "pod", "monitor",
              "chan", "records", "ntp@local0 (us)");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& ft = dynamic_cast<FileTrace&>(traces.at(i));
    const TraceHeader& h = ft.header();
    std::printf("  %-6u %-5u %-8u %-6s %10llu %16lld\n", h.radio, h.pod,
                h.monitor, ChannelName(h.channel).c_str(),
                static_cast<unsigned long long>(ft.reader().TotalRecords()),
                static_cast<long long>(h.ntp_utc_of_local_zero_us));
  }
  return 0;
}

int CmdMerge(const char* dir) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  const MergeResult merged = MergeTraces(traces);
  const auto& st = merged.stats;
  std::printf("radios synced:     %zu/%zu (BFS depth %d, |G|=%zu)\n",
              merged.bootstrap.SyncedCount(), merged.bootstrap.synced.size(),
              merged.bootstrap.max_bfs_depth,
              merged.bootstrap.sync_set_size);
  std::printf("events:            %llu (%llu valid, %llu FCS-err, %llu "
              "PHY-err)\n",
              static_cast<unsigned long long>(st.events_in),
              static_cast<unsigned long long>(st.valid_in),
              static_cast<unsigned long long>(st.fcs_error_in),
              static_cast<unsigned long long>(st.phy_error_in));
  std::printf("jframes:           %llu (%.2f events each, %llu resyncs)\n",
              static_cast<unsigned long long>(st.jframes),
              st.EventsPerJframe(),
              static_cast<unsigned long long>(st.resyncs));
  const auto link = ReconstructLink(merged.jframes);
  std::printf("link layer:        %zu attempts -> %zu exchanges\n",
              link.attempts.size(), link.exchanges.size());
  return 0;
}

int CmdTimeline(const char* dir, Micros span) {
  TraceSet traces = TraceSet::OpenDirectory(dir);
  if (traces.empty()) {
    std::fprintf(stderr, "no .jigt files in %s\n", dir);
    return 1;
  }
  const MergeResult merged = MergeTraces(traces);
  TimelineOptions options;
  options.span = span;
  // Start at the first busy multi-instance DATA frame.
  for (const JFrame& jf : merged.jframes) {
    if (jf.frame.type == FrameType::kData && jf.InstanceCount() >= 3) {
      options.start = jf.timestamp - 100;
      break;
    }
  }
  std::printf("%s", RenderTimeline(merged.jframes, options).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: jigtool demo|info|merge|timeline <trace_dir> "
                 "[span_us]\n");
    return 2;
  }
  const char* cmd = argv[1];
  const char* dir = argv[2];
  if (std::strcmp(cmd, "demo") == 0) return CmdDemo(dir);
  if (std::strcmp(cmd, "info") == 0) return CmdInfo(dir);
  if (std::strcmp(cmd, "merge") == 0) return CmdMerge(dir);
  if (std::strcmp(cmd, "timeline") == 0) {
    return CmdTimeline(dir, argc > 3 ? std::atol(argv[3]) : 5000);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd);
  return 2;
}
