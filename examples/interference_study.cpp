// Interference study: find the hidden terminals hurting your WLAN.
//
// The paper's Section 7.2 argument in miniature: only a *global* viewpoint
// can correlate "this transmission died" with "someone else was talking at
// the same instant".  This example runs a congested scenario, estimates the
// conditional interference probability P_i per (sender, receiver) pair, and
// prints the worst-suffering links — the output a network operator would
// act on (relocate an AP, change a channel).
//
// Usage: ./build/examples/interference_study [seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  const Micros duration = Seconds(argc > 1 ? std::atol(argv[1]) : 45);

  ScenarioConfig config;
  config.seed = 3;
  config.duration = duration;
  config.clients = 48;
  config.workload.web_per_min = 4.0;   // busy network: contention everywhere
  config.workload.scp_per_min = 0.4;
  Scenario scenario(config);
  scenario.Run();
  auto traces = scenario.TakeTraces();

  // Single pass: parallel channel-sharded merge feeding the analysis bus.
  // The estimator rides the windowed link reconstructor — overlap flags and
  // pair counters update incrementally, so no jframe vector is ever
  // buffered (peak memory is bounded by the 500 ms exchange timeout).
  InterferenceConfig icfg;
  icfg.min_packets = 25;
  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link, icfg);
  MergeConfig mcfg;
  mcfg.threads = 0;  // auto: one worker per channel shard
  MergeTracesStreaming(traces, mcfg, bus.Sink());
  bus.Finish();
  const InterferenceReport& report = interference.report();

  std::printf("analyzed %zu (s,r) pairs with >=%u transmissions "
              "(peak window: %zu of %llu jframes)\n",
              report.pairs.size(), icfg.min_packets,
              link.peak_window_jframes(),
              static_cast<unsigned long long>(bus.jframes_seen()));
  std::printf("background loss rate (no contention): %.3f\n",
              report.mean_background_loss);
  std::printf("pairs with measurable interference:  %.1f%%\n\n",
              100.0 * report.fraction_pairs_interfered);

  // The pairs an operator should look at first: highest interference loss.
  auto pairs = report.pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const PairInterference& a, const PairInterference& b) {
              return a.X() > b.X();
            });
  std::printf("worst links by interference loss rate X:\n");
  std::printf("  %-20s %-20s %6s %6s %7s %7s %7s\n", "sender", "receiver",
              "n", "nx", "bg", "Pi", "X");
  for (std::size_t i = 0; i < pairs.size() && i < 10; ++i) {
    const auto& p = pairs[i];
    std::printf("  %-20s %-20s %6u %6u %7.3f %7.3f %7.3f%s\n",
                p.sender.ToString().c_str(), p.receiver.ToString().c_str(),
                p.n, p.nx, p.BackgroundLossRate(), p.Pi(), p.X(),
                p.sender.IsApTag() ? "  (AP sender)" : "");
  }

  // Cross-check against simulator ground truth: of the transmissions the
  // medium flagged as interfered, how many died?
  std::uint64_t interfered = 0, interfered_lost = 0;
  for (const auto& e : scenario.truth().entries()) {
    if (e.type != FrameType::kData || !e.receiver.IsUnicast()) continue;
    if (e.interfered) {
      ++interfered;
      if (!e.delivered_ok) ++interfered_lost;
    }
  }
  std::printf("\nground truth: %llu DATA transmissions overlapped another; "
              "%.1f%% of those were lost\n",
              static_cast<unsigned long long>(interfered),
              interfered ? 100.0 * interfered_lost / interfered : 0.0);
  return 0;
}
