// CC shootout: a mixed Reno + CUBIC + BBR cell driven end-to-end — the
// "one-line scenario change" the cc/ subsystem exists for.
//
//   1. Scenario with workload.cc_cycle = {reno, cubic, bbr}: every third
//      client runs a different congestion-control algorithm over the same
//      monitored air, with a microwave-oven interferer stirring the loss
//      process.
//   2. Merge the monitor traces and reconstruct link + transport layers
//      (no ground-truth shortcuts).
//   3. Join reconstructed flows against the simulator's flow registry to
//      label each with its sender's algorithm, then compare the per-CC
//      wireless/wired loss decomposition and retransmission behaviour.
//
// Build & run:  ./build/cc_shootout
#include <cstdio>

#include "jigsaw/analysis/tcp_loss.h"
#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/tcp_reconstruct.h"
#include "sim/scenario.h"

int main() {
  using namespace jig;

  // 1. A CC-diverse interference scenario.
  ScenarioConfig config;
  config.seed = 2006;
  config.duration = Seconds(60);
  config.clients = 30;
  config.noise_bursts_per_min = 12.0;  // a busy kitchen
  config.workload.cc_cycle = {CcAlgorithm::kReno, CcAlgorithm::kCubic,
                              CcAlgorithm::kBbr};
  config.workload.web_per_min = 3.0;
  config.workload.scp_per_min = 0.5;
  Scenario scenario(config);
  std::printf("deployment: %zu pods, %zu APs, %zu clients "
              "(cc mix: reno/cubic/bbr round-robin)\n",
              scenario.pod_info().size(), scenario.ap_count(),
              scenario.client_count());
  scenario.Run();
  std::printf("workload: %llu flows started, %llu completed\n",
              static_cast<unsigned long long>(
                  scenario.traffic_stats().flows_started),
              static_cast<unsigned long long>(
                  scenario.traffic_stats().flows_completed));

  // 2. Monitors -> jframes -> flows.
  TraceSet traces = scenario.TakeTraces();
  const MergeResult merged = MergeTraces(traces);
  const LinkReconstruction link = ReconstructLink(merged.jframes);
  const TransportReconstruction transport =
      ReconstructTransport(merged.jframes, link);
  std::printf("reconstruction: %llu jframes -> %zu TCP flows (%llu with "
              "handshake)\n\n",
              static_cast<unsigned long long>(merged.stats.jframes),
              transport.flows.size(),
              static_cast<unsigned long long>(
                  transport.stats.flows_with_handshake));

  // 3. Per-algorithm Figure-11 decomposition.
  const auto cc_index = scenario.truth().FlowCcIndex();
  const auto groups = ComputeTcpLossByGroup(
      transport,
      [&cc_index](const TcpFlowKey& key) {
        const auto it = cc_index.find(
            FlowTruth::Key(key.client_ip, key.server_ip, key.client_port,
                           key.server_port));
        return it == cc_index.end()
                   ? std::string()
                   : std::string(CcAlgorithmName(it->second));
      },
      TcpLossConfig{.min_segments = 5});

  std::printf("%-8s %7s %12s %12s %12s\n", "algo", "flows", "loss rate",
              "wireless", "wired");
  for (const TcpLossGroup& g : groups) {
    std::printf("%-8s %7llu %12.4f %12.4f %12.4f\n", g.label.c_str(),
                static_cast<unsigned long long>(g.report.flows_considered),
                g.report.aggregate_loss_rate,
                g.report.aggregate_wireless_rate,
                g.report.aggregate_wired_rate);
  }
  std::printf("\nLoss-based senders (reno, cubic) halve their windows on "
              "every wireless loss;\nBBR's path model absorbs them — "
              "compare the per-algorithm loss rates above\nagainst the "
              "shared air they all crossed.\n");
  return 0;
}
