// TCP doctor: "why is the network slow?" — the question the paper closes
// with.  For every TCP flow crossing the air, decompose its losses into
// wireless vs. wired causes and report the flows that suffered most,
// with the covering-ACK oracle resolving link-layer ambiguity.
//
// Usage: ./build/examples/tcp_doctor [seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "jigsaw/analysis/tcp_loss.h"
#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/tcp_reconstruct.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  const Micros duration = Seconds(argc > 1 ? std::atol(argv[1]) : 60);

  ScenarioConfig config;
  config.seed = 5;
  config.duration = duration;
  config.clients = 36;
  config.workload.web_per_min = 3.0;
  config.workload.scp_per_min = 0.5;
  Scenario scenario(config);
  scenario.Run();
  auto traces = scenario.TakeTraces();

  const MergeResult merged = MergeTraces(traces);
  const LinkReconstruction link = ReconstructLink(merged.jframes);
  const TransportReconstruction transport =
      ReconstructTransport(merged.jframes, link);

  std::printf("reconstructed %zu flows (%llu with handshakes), "
              "%llu TCP segments on the air\n",
              transport.flows.size(),
              static_cast<unsigned long long>(
                  transport.stats.flows_with_handshake),
              static_cast<unsigned long long>(transport.stats.tcp_segments));
  std::printf("inference: %llu ambiguous frame exchanges resolved by "
              "covering ACKs, %llu unobserved segments inferred from "
              "sequence holes\n\n",
              static_cast<unsigned long long>(
                  transport.stats.covering_ack_resolutions),
              static_cast<unsigned long long>(
                  transport.stats.inferred_missing_segments));

  // The sickest flows: highest loss rate with enough traffic to matter.
  auto flows = transport.flows;
  std::erase_if(flows, [](const TcpFlowRecord& f) {
    return !f.handshake_complete || f.DataSegments() < 10;
  });
  std::sort(flows.begin(), flows.end(),
            [](const TcpFlowRecord& a, const TcpFlowRecord& b) {
              return a.LossRate() > b.LossRate();
            });

  std::printf("flows by loss rate (worst first):\n");
  std::printf("  %-22s %6s %6s %9s %9s %9s %9s\n", "client:port -> srv:port",
              "segs", "loss%", "wireless", "wired", "rtt-wire", "rtt-air");
  for (std::size_t i = 0; i < flows.size() && i < 12; ++i) {
    const auto& f = flows[i];
    char name[64];
    std::snprintf(name, sizeof(name), "%s:%u->:%u",
                  Ipv4ToString(f.key.client_ip).c_str(), f.key.client_port,
                  f.key.server_port);
    std::printf("  %-22s %6u %5.1f%% %9u %9u %7.1fms %7.1fms\n", name,
                f.DataSegments(), 100.0 * f.LossRate(),
                f.LossesBy(LossCause::kWireless),
                f.LossesBy(LossCause::kWired), f.wired_rtt_ms,
                f.wireless_rtt_ms);
  }

  const TcpLossReport report = ComputeTcpLoss(transport, {});
  std::printf("\ndiagnosis: aggregate loss %.3f%% — %.3f%% wireless, "
              "%.3f%% wired.\n",
              100.0 * report.aggregate_loss_rate,
              100.0 * report.aggregate_wireless_rate,
              100.0 * report.aggregate_wired_rate);
  if (report.aggregate_wireless_rate >= report.aggregate_wired_rate) {
    std::printf("the air dominates: look at coverage, interference and "
                "rate adaptation before blaming the ISP.\n");
  } else {
    std::printf("the wired path dominates: the WLAN is healthy.\n");
  }
  return 0;
}
