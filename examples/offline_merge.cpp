// Offline merge: the jigdump storage path.
//
// The paper's monitors stream compressed capture files to a central server
// over NFS; analysis then runs over the stored traces.  This example
// reproduces that workflow: simulate a capture session, write each radio's
// trace as a .jigt file (LZ-compressed blocks + metadata index), then
// reload the directory cold and run the merge from disk — exactly what an
// operator would do with a directory of jigdump output.
//
// Usage: ./build/examples/offline_merge [trace_dir]
#include <cstdio>
#include <filesystem>

#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace jig;
  namespace fs = std::filesystem;
  const fs::path dir = argc > 1 ? fs::path(argv[1])
                                : fs::temp_directory_path() / "jigsaw_traces";

  // Capture session.
  ScenarioConfig config;
  config.seed = 2;
  config.duration = Seconds(8);
  config.clients = 12;
  Scenario scenario(config);
  scenario.Run();
  TraceSet live = scenario.TakeTraces();

  // Store: one .jigt file per radio.
  const auto paths = live.WriteDirectory(dir);
  std::uintmax_t bytes = 0;
  for (const auto& p : paths) bytes += fs::file_size(p);
  std::printf("wrote %zu trace files (%.2f MiB compressed) to %s\n",
              paths.size(), static_cast<double>(bytes) / (1 << 20),
              dir.string().c_str());

  // Reload cold and inspect one file's index.
  TraceSet stored = TraceSet::OpenDirectory(dir);
  auto& first = dynamic_cast<FileTrace&>(stored.at(0));
  std::printf("r%u: %llu records in %zu indexed blocks\n",
              first.header().radio,
              static_cast<unsigned long long>(first.reader().TotalRecords()),
              first.reader().index().size());

  // Merge from disk.
  const MergeResult merged = MergeTraces(stored);
  std::printf("merged from disk: %llu jframes, %zu/%zu radios synced\n",
              static_cast<unsigned long long>(merged.stats.jframes),
              merged.bootstrap.SyncedCount(),
              merged.bootstrap.synced.size());

  std::error_code ec;
  if (argc <= 1) fs::remove_all(dir, ec);  // clean up the demo directory
  return 0;
}
